"""Tests for the baseline kernel libraries: cuBLAS, cuSparseLt, Sputnik, CLASP."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.nm import NMSparseMatrix
from repro.kernels import clasp, cublas, cusparselt, sputnik
from repro.kernels.common import GemmProblem, reference_matmul_fp16
from repro.pruning.magnitude import magnitude_mask
from repro.pruning.masks import apply_mask
from repro.pruning.vector_wise import vector_wise_mask


class TestCublas:
    def test_functional_matches_reference(self, rng):
        a = rng.normal(size=(16, 32)).astype(np.float32)
        b = rng.normal(size=(32, 8)).astype(np.float32)
        assert np.allclose(cublas.gemm(a, b), reference_matmul_fp16(a, b))

    def test_run_attaches_output(self, rng, gpu):
        a = rng.normal(size=(16, 32)).astype(np.float32)
        b = rng.normal(size=(32, 8)).astype(np.float32)
        res = cublas.run(a, b, gpu=gpu)
        assert res.output.shape == (16, 8)
        assert res.time_us > 0

    def test_time_grows_with_problem_size(self, gpu):
        small = cublas.estimate_time(GemmProblem(1024, 1024, 1024), gpu=gpu)
        large = cublas.estimate_time(GemmProblem(1024, 8192, 1024), gpu=gpu)
        assert large.time_us > small.time_us

    def test_efficiency_grows_with_size(self, gpu):
        """Small GEMMs are launch/tail-bound; larger ones approach peak."""
        small = cublas.estimate_time(GemmProblem(768, 768, 4096), gpu=gpu)
        large = cublas.estimate_time(GemmProblem(768, 12288, 4096), gpu=gpu)
        assert large.tflops_dense_equivalent > small.tflops_dense_equivalent

    def test_realistic_tflops_range(self, gpu):
        """cuBLAS on BERT-large-sized GEMMs lands in the 40-80 TFLOP/s band
        the paper's Figure 12 shows."""
        res = cublas.estimate_time(GemmProblem(1024, 8192, 4096), gpu=gpu)
        assert 40.0 < res.tflops_dense_equivalent < 85.0

    def test_tile_heuristic_never_worse_than_fixed_tile(self, gpu):
        p = GemmProblem(1024, 4096, 4096)
        auto = cublas.estimate_time(p, gpu=gpu)
        fixed = cublas.estimate_time(p, gpu=gpu, config=cublas.CublasConfig(tile_r=64, tile_c=64))
        assert auto.time_us <= fixed.time_us + 1e-6

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            cublas.CublasConfig(tile_r=0)
        with pytest.raises(ValueError):
            cublas.CublasConfig(compute_efficiency=0.0)


class TestCusparseLt:
    @pytest.fixture
    def operands(self, rng):
        a_dense = rng.normal(size=(32, 64))
        a_dense = apply_mask(a_dense, np.abs(a_dense) > 0)  # keep as float64
        from repro.pruning.nm import nm_mask

        a_pruned = apply_mask(a_dense, nm_mask(a_dense, 2, 4)).astype(np.float32)
        b = rng.normal(size=(64, 16)).astype(np.float32)
        return NMSparseMatrix.from_dense(a_pruned, 2, 4), a_pruned, b

    def test_functional_matches_dense_reference(self, operands):
        a_sparse, a_pruned, b = operands
        out = cusparselt.spmm(a_sparse, b)
        assert np.allclose(out, reference_matmul_fp16(a_pruned, b), atol=1e-2, rtol=1e-2)

    def test_run_wrapper(self, operands, gpu):
        a_sparse, _, b = operands
        res = cusparselt.run(a_sparse, b, gpu=gpu)
        assert res.output.shape == (32, 16)
        assert res.problem.sparsity == pytest.approx(0.5)

    def test_only_50_percent_supported(self, gpu):
        with pytest.raises(ValueError):
            cusparselt.estimate_time(GemmProblem.from_nm(1024, 4096, 4096, 2, 8), gpu=gpu)
        with pytest.raises(ValueError):
            cusparselt.estimate_time(GemmProblem(1024, 4096, 4096, sparsity=0.75), gpu=gpu)

    def test_faster_than_dense_at_large_k(self, gpu):
        p = GemmProblem.from_nm(1024, 8192, 4096, 2, 4)
        dense = cublas.estimate_time(p, gpu=gpu)
        sparse = cusparselt.estimate_time(p, gpu=gpu)
        assert 1.2 < dense.time_us / sparse.time_us <= 2.0

    def test_wrong_operand_type(self, rng):
        with pytest.raises(TypeError):
            cusparselt.spmm(rng.normal(size=(4, 8)), rng.normal(size=(8, 2)))

    def test_shape_mismatch(self, operands):
        a_sparse, _, _ = operands
        with pytest.raises(ValueError):
            cusparselt.spmm(a_sparse, np.ones((10, 4)))


class TestSputnik:
    @pytest.fixture
    def operands(self, rng):
        a_dense = rng.normal(size=(32, 64))
        a_pruned = apply_mask(a_dense, magnitude_mask(a_dense, 0.9)).astype(np.float32)
        b = rng.normal(size=(64, 16)).astype(np.float32)
        return CSRMatrix.from_dense(a_pruned), a_pruned, b

    def test_functional_matches_dense_reference(self, operands):
        a_sparse, a_pruned, b = operands
        out = sputnik.spmm(a_sparse, b)
        assert np.allclose(out, reference_matmul_fp16(a_pruned, b), atol=1e-2, rtol=1e-2)

    def test_run_wrapper(self, operands, gpu):
        a_sparse, _, b = operands
        res = sputnik.run(a_sparse, b, gpu=gpu)
        assert res.output.shape == (32, 16)
        assert res.problem.sparsity == pytest.approx(0.9, abs=0.01)

    def test_slower_than_cublas_at_moderate_sparsity(self, gpu):
        """The paper: Sputnik only overtakes cuBLAS above ~90% sparsity on
        LLM-sized matrices."""
        p = GemmProblem(4096, 1024, 4096, sparsity=0.7)
        dense = cublas.estimate_time(p, gpu=gpu)
        spk = sputnik.estimate_time(p, gpu=gpu)
        assert spk.time_us > dense.time_us

    def test_speedup_saturates_at_high_sparsity(self, gpu):
        """Even at 98% sparsity Sputnik stays in the low single digits."""
        p = GemmProblem(4096, 1024, 4096, sparsity=0.98)
        dense = cublas.estimate_time(p, gpu=gpu)
        spk = sputnik.estimate_time(p, gpu=gpu)
        assert dense.time_us / spk.time_us < 6.0

    def test_load_imbalance_slows_kernel(self, gpu):
        p = GemmProblem(4096, 1024, 4096, sparsity=0.9)
        balanced = sputnik.estimate_time(p, gpu=gpu, load_imbalance=1.0)
        skewed = sputnik.estimate_time(p, gpu=gpu, load_imbalance=2.0)
        assert skewed.time_us > balanced.time_us

    def test_invalid_load_imbalance(self, gpu):
        with pytest.raises(ValueError):
            sputnik.estimate_time(GemmProblem(64, 64, 64, sparsity=0.5), gpu=gpu, load_imbalance=0.5)

    def test_wrong_operand_type(self, rng):
        with pytest.raises(TypeError):
            sputnik.spmm(rng.normal(size=(4, 8)), rng.normal(size=(8, 2)))


class TestClasp:
    @pytest.fixture
    def operands(self, rng):
        a_dense = rng.normal(size=(32, 64))
        a_pruned = apply_mask(a_dense, vector_wise_mask(a_dense, 0.75, l=8)).astype(np.float32)
        b = rng.normal(size=(64, 16)).astype(np.float32)
        return CVSEMatrix.from_dense(a_pruned, l=8), a_pruned, b

    def test_functional_matches_dense_reference(self, operands):
        a_sparse, a_pruned, b = operands
        out = clasp.spmm(a_sparse, b)
        assert np.allclose(out, reference_matmul_fp16(a_pruned, b), atol=1e-2, rtol=1e-2)

    def test_run_wrapper(self, operands, gpu):
        a_sparse, _, b = operands
        res = clasp.run(a_sparse, b, gpu=gpu)
        assert res.output.shape == (32, 16)

    def test_faster_than_sputnik_at_same_sparsity(self, gpu):
        """Tensor-core execution gives CLASP the edge over scalar Sputnik."""
        p = GemmProblem(4096, 1024, 4096, sparsity=0.9)
        assert clasp.estimate_time(p, gpu=gpu).time_us < sputnik.estimate_time(p, gpu=gpu).time_us

    def test_caps_well_below_spatha_at_high_sparsity(self, gpu):
        from repro.kernels.spatha import estimate_time as spatha_time

        p = GemmProblem.from_nm(4096, 1024, 4096, 2, 40, v=64)
        cl = clasp.estimate_time(p, gpu=gpu)
        sp = spatha_time(p, gpu=gpu)
        assert sp.time_us < cl.time_us

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            clasp.ClaspConfig(vector_length=0)
        with pytest.raises(ValueError):
            clasp.ClaspConfig(gather_reuse=1.5)

    def test_wrong_operand_type(self, rng):
        with pytest.raises(TypeError):
            clasp.spmm(rng.normal(size=(4, 8)), rng.normal(size=(8, 2)))
