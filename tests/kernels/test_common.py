"""Tests for the shared kernel abstractions (GemmProblem, KernelResult)."""

import numpy as np
import pytest

from repro.kernels import cublas
from repro.kernels.common import (
    GemmProblem,
    KernelResult,
    reference_matmul_fp16,
    reference_matmul_fp16_batched,
)


class TestGemmProblem:
    def test_dense_flops(self):
        p = GemmProblem(r=4, k=8, c=2)
        assert p.dense_flops == 2 * 4 * 8 * 2

    def test_effective_flops_scale_with_density(self):
        p = GemmProblem(r=4, k=8, c=2, sparsity=0.75)
        assert p.effective_flops == pytest.approx(p.dense_flops * 0.25)
        assert p.density == pytest.approx(0.25)

    def test_from_nm(self):
        p = GemmProblem.from_nm(1024, 4096, 4096, 2, 10, v=128)
        assert p.sparsity == pytest.approx(0.8)
        assert (p.n, p.m, p.v) == (2, 10, 128)

    def test_with_sparsity(self):
        p = GemmProblem(r=4, k=8, c=2)
        q = p.with_sparsity(0.5, n=2, m=4)
        assert q.sparsity == 0.5 and p.sparsity == 0.0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GemmProblem(r=0, k=8, c=2)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            GemmProblem(r=4, k=8, c=2, sparsity=1.0)

    def test_n_and_m_must_come_together(self):
        with pytest.raises(ValueError):
            GemmProblem(r=4, k=8, c=2, n=2)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            GemmProblem.from_nm(4, 8, 2, 5, 4)


class TestKernelResult:
    @pytest.fixture
    def dense_result(self, gpu):
        return cublas.estimate_time(GemmProblem(r=256, k=512, c=256), gpu=gpu)

    def test_time_properties(self, dense_result):
        assert dense_result.time_us > 0
        assert dense_result.time_ms == pytest.approx(dense_result.time_us / 1e3)

    def test_tflops_dense_equivalent_at_least_effective(self, gpu):
        sparse = GemmProblem.from_nm(256, 512, 256, 2, 8, v=64)
        from repro.kernels.spatha import estimate_time

        res = estimate_time(sparse, gpu=gpu)
        assert res.tflops_dense_equivalent > res.tflops_effective

    def test_speedup_over_same_problem(self, gpu, dense_result):
        other = cublas.estimate_time(GemmProblem(r=256, k=512, c=256), gpu=gpu)
        assert dense_result.speedup_over(other) == pytest.approx(1.0)

    def test_speedup_requires_same_dims(self, gpu, dense_result):
        other = cublas.estimate_time(GemmProblem(r=128, k=512, c=256), gpu=gpu)
        with pytest.raises(ValueError):
            dense_result.speedup_over(other)

    def test_as_execution(self, dense_result):
        ex = dense_result.as_execution("gemm")
        assert ex.kernel == dense_result.kernel
        assert ex.time_us == pytest.approx(dense_result.time_us)


class TestReferenceMatmul:
    def test_matches_float64_for_small_values(self, rng):
        a = rng.normal(scale=0.1, size=(16, 32)).astype(np.float32)
        b = rng.normal(scale=0.1, size=(32, 8)).astype(np.float32)
        out = reference_matmul_fp16(a, b)
        expected = a.astype(np.float64) @ b.astype(np.float64)
        assert np.allclose(out, expected, atol=1e-2)

    def test_fp16_rounding_applied(self):
        a = np.array([[1.0 + 2.0**-12]], dtype=np.float32)
        b = np.array([[1.0]], dtype=np.float32)
        assert reference_matmul_fp16(a, b)[0, 0] == pytest.approx(1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reference_matmul_fp16(np.ones((2, 3)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            reference_matmul_fp16(np.ones(3), np.ones((3, 2)))

    def test_batched_variant_is_slab_exact_vs_2d_reference(self, rng):
        """Each slab of the batched fp16 matmul must reproduce the 2-D
        reference bit for bit — the property model-level serving's dense
        layers rely on."""
        a = rng.normal(size=(4, 6, 32)).astype(np.float32)
        b = rng.normal(size=(32, 8)).astype(np.float32)
        out = reference_matmul_fp16_batched(a, b)
        assert out.shape == (4, 6, 8)
        for i in range(4):
            assert np.array_equal(out[i], reference_matmul_fp16(a[i], b))

    def test_batched_variant_shape_validation(self):
        with pytest.raises(ValueError):
            reference_matmul_fp16_batched(np.ones((2, 4, 3)), np.ones((4, 2)))
