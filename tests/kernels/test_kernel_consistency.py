"""Cross-library consistency tests.

All five libraries must produce the same numerical result on equivalent
operands (the same pruned matrix stored in their respective formats), and
the performance models must respect the orderings the paper's evaluation
establishes between them.
"""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.nm import NMSparseMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels import clasp, cublas, cusparselt, sputnik
from repro.kernels.common import GemmProblem, reference_matmul_fp16
from repro.kernels.spatha import Spatha, estimate_time as spatha_time
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask
from repro.pruning.vnm import vnm_mask


class TestNumericalConsistency:
    def test_all_formats_agree_on_24_operand(self, rng):
        """The same 2:4-pruned matrix run through every library gives the
        same product (2:4 is also a valid V:2:4 pattern and a valid CSR/CVSE
        input)."""
        dense = rng.normal(size=(32, 64))
        pruned = apply_mask(dense, nm_mask(dense, 2, 4)).astype(np.float32)
        b = rng.normal(size=(64, 16)).astype(np.float32)
        expected = reference_matmul_fp16(pruned, b)

        out_cusparselt = cusparselt.spmm(NMSparseMatrix.from_dense(pruned, 2, 4), b)
        out_sputnik = sputnik.spmm(CSRMatrix.from_dense(pruned), b)
        out_clasp = clasp.spmm(CVSEMatrix.from_dense(pruned, l=8), b)
        out_spatha = Spatha(autotune=False).spmm(
            VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=4, strict=True), b
        )
        out_dense = cublas.gemm(pruned, b)

        for name, out in [
            ("cusparselt", out_cusparselt),
            ("sputnik", out_sputnik),
            ("clasp", out_clasp),
            ("spatha", out_spatha),
            ("cublas", out_dense),
        ]:
            assert np.allclose(out, expected, atol=2e-2, rtol=1e-2), name

    def test_spatha_and_sputnik_agree_on_vnm_operand(self, rng):
        dense = rng.normal(size=(64, 128))
        pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=16)).astype(np.float32)
        b = rng.normal(size=(128, 8)).astype(np.float32)
        out_spatha = Spatha(autotune=False).spmm(
            VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=16), b
        )
        out_sputnik = sputnik.spmm(CSRMatrix.from_dense(pruned), b)
        assert np.allclose(out_spatha, out_sputnik, atol=2e-2, rtol=1e-2)


class TestPerformanceOrderings:
    """The qualitative orderings of Figure 13."""

    @pytest.fixture
    def bert_large_ffn(self):
        # BERT-large FFN output-projection GEMM (R=hidden, K=intermediate),
        # batch 16 x seq 512 tokens.
        return dict(r=1024, k=4096, c=8192)

    def test_spatha_beats_every_sparse_baseline_at_90_percent(self, gpu, bert_large_ffn):
        p = GemmProblem.from_nm(n=2, m=20, v=128, **bert_large_ffn)
        t_spatha = spatha_time(p, gpu=gpu).time_us
        assert t_spatha < sputnik.estimate_time(p, gpu=gpu).time_us
        assert t_spatha < clasp.estimate_time(p, gpu=gpu).time_us
        assert t_spatha < cublas.estimate_time(p, gpu=gpu).time_us

    def test_sputnik_clasp_beat_cublas_only_at_high_sparsity(self, gpu, bert_large_ffn):
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        moderate = GemmProblem(sparsity=0.7, **bert_large_ffn)
        extreme = GemmProblem(sparsity=0.98, **bert_large_ffn)
        assert sputnik.estimate_time(moderate, gpu=gpu).time_us > dense_time
        assert clasp.estimate_time(moderate, gpu=gpu).time_us > dense_time
        assert sputnik.estimate_time(extreme, gpu=gpu).time_us < dense_time
        assert clasp.estimate_time(extreme, gpu=gpu).time_us < dense_time

    def test_third_party_libraries_cap_in_low_single_digits(self, gpu, bert_large_ffn):
        """The paper reports Sputnik/CLASP saturating around ~3x; the model
        keeps them in the low single digits, far below Spatha's 25x+."""
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        extreme = GemmProblem(sparsity=0.98, **bert_large_ffn)
        assert dense_time / sputnik.estimate_time(extreme, gpu=gpu).time_us < 5.0
        assert dense_time / clasp.estimate_time(extreme, gpu=gpu).time_us < 7.5
        spatha_98 = spatha_time(GemmProblem.from_nm(n=2, m=100, v=128, **bert_large_ffn), gpu=gpu)
        assert dense_time / spatha_98.time_us > 2 * dense_time / clasp.estimate_time(extreme, gpu=gpu).time_us

    def test_spatha_at_50_percent_is_about_2x(self, gpu, bert_large_ffn):
        p = GemmProblem.from_nm(n=2, m=4, v=128, **bert_large_ffn)
        dense_time = cublas.estimate_time(p, gpu=gpu).time_us
        assert 1.5 < dense_time / spatha_time(p, gpu=gpu).time_us <= 2.0

    def test_spatha_speedup_monotone_in_sparsity(self, gpu, bert_large_ffn):
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        speedups = []
        for m in (4, 8, 10, 20, 40, 100):
            p = GemmProblem.from_nm(n=2, m=m, v=128, **bert_large_ffn)
            speedups.append(dense_time / spatha_time(p, gpu=gpu).time_us)
        assert all(b >= a - 1e-6 for a, b in zip(speedups, speedups[1:]))
