"""Cross-library consistency tests.

All five libraries must produce the same numerical result on equivalent
operands (the same pruned matrix stored in their respective formats), and
the performance models must respect the orderings the paper's evaluation
establishes between them.
"""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.nm import NMSparseMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels import clasp, cublas, cusparse, cusparselt, sputnik
from repro.kernels.common import GemmProblem, reference_matmul_fp16
from repro.kernels.dispatch import FORMAT_BLOCKED_ELL, FORMAT_CSR, FORMAT_DENSE, FORMAT_VNM, KernelDispatcher, SpmmOperand
from repro.kernels.spatha import Spatha, spmm as spatha_spmm, estimate_time as spatha_time
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask
from repro.pruning.vnm import vnm_mask


class TestNumericalConsistency:
    def test_all_formats_agree_on_24_operand(self, rng):
        """The same 2:4-pruned matrix run through every library gives the
        same product (2:4 is also a valid V:2:4 pattern and a valid CSR/CVSE
        input)."""
        dense = rng.normal(size=(32, 64))
        pruned = apply_mask(dense, nm_mask(dense, 2, 4)).astype(np.float32)
        b = rng.normal(size=(64, 16)).astype(np.float32)
        expected = reference_matmul_fp16(pruned, b)

        out_cusparselt = cusparselt.spmm(NMSparseMatrix.from_dense(pruned, 2, 4), b)
        out_sputnik = sputnik.spmm(CSRMatrix.from_dense(pruned), b)
        out_clasp = clasp.spmm(CVSEMatrix.from_dense(pruned, l=8), b)
        out_spatha = Spatha(autotune=False).spmm(
            VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=4, strict=True), b
        )
        out_dense = cublas.gemm(pruned, b)

        for name, out in [
            ("cusparselt", out_cusparselt),
            ("sputnik", out_sputnik),
            ("clasp", out_clasp),
            ("spatha", out_spatha),
            ("cublas", out_dense),
        ]:
            assert np.allclose(out, expected, atol=2e-2, rtol=1e-2), name

    def test_spatha_and_sputnik_agree_on_vnm_operand(self, rng):
        dense = rng.normal(size=(64, 128))
        pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=16)).astype(np.float32)
        b = rng.normal(size=(128, 8)).astype(np.float32)
        out_spatha = Spatha(autotune=False).spmm(
            VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=16), b
        )
        out_sputnik = sputnik.spmm(CSRMatrix.from_dense(pruned), b)
        assert np.allclose(out_spatha, out_sputnik, atol=2e-2, rtol=1e-2)


#: The dispatch-consistency matrix: every cell is one (storage format,
#: V:N:M pattern, shape bucket) combination.  Shapes are chosen so their C
#: falls into three distinct dispatcher shape buckets (<=8, <=32, <=128),
#: and the R/K dimensions are compatible with every pattern's (V, M) and
#: with the Blocked-ELL block size.
DISPATCH_FORMATS = (FORMAT_VNM, FORMAT_CSR, FORMAT_BLOCKED_ELL, FORMAT_DENSE)
DISPATCH_PATTERNS = ((8, 2, 4), (16, 2, 8), (8, 1, 8), (16, 2, 16))  # (V, N, M)
DISPATCH_SHAPES = ((32, 64, 6), (64, 128, 24), (64, 128, 96))  # (R, K, C)
_ELL_BLOCK = 8


def _pruned_operand_matrix(rng, r, k, v, n, m):
    dense = rng.normal(size=(r, k))
    return apply_mask(dense, vnm_mask(dense, v=v, n=n, m=m)).astype(np.float32)


def _direct_backend_call(fmt, pruned, v, n, m, b):
    """Invoke the backend library directly, bypassing the dispatcher."""
    if fmt == FORMAT_VNM:
        return spatha_spmm(VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m, strict=True), b)
    if fmt == FORMAT_CSR:
        return sputnik.spmm(CSRMatrix.from_dense(pruned), b)
    if fmt == FORMAT_BLOCKED_ELL:
        return cusparse.spmm(BlockedEllMatrix.from_dense(pruned, b=_ELL_BLOCK), b)
    assert fmt == FORMAT_DENSE
    return cublas.gemm(pruned, b)


class TestDispatchConsistencyMatrix:
    """Every dispatch decision must be provably output-identical to calling
    the chosen backend directly, across the full (format, pattern, shape
    bucket) matrix, and numerically consistent with the dense fp16
    reference."""

    @pytest.mark.parametrize("fmt", DISPATCH_FORMATS)
    @pytest.mark.parametrize("pattern", DISPATCH_PATTERNS, ids=lambda p: "v%d_%d:%d" % p)
    @pytest.mark.parametrize("shape", DISPATCH_SHAPES, ids=lambda s: "%dx%dx%d" % s)
    def test_dispatcher_bit_matches_direct_backend(self, rng, fmt, pattern, shape):
        v, n, m = pattern
        r, k, c = shape
        pruned = _pruned_operand_matrix(rng, r, k, v, n, m)
        b = rng.normal(size=(k, c)).astype(np.float32)
        kwargs = dict(v=v, n=n, m=m) if fmt == FORMAT_VNM else {}
        operand = SpmmOperand.from_dense(
            pruned, formats=(fmt,), block_size=_ELL_BLOCK, allow_dense=False, **kwargs
        )
        if fmt == FORMAT_DENSE:
            operand = SpmmOperand(dense=pruned)
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, c)
        # Single-format operand: the dispatcher must route to this format's
        # backend and reproduce its direct invocation bit for bit.
        expected_backend = {
            FORMAT_VNM: "spatha-plan",
            FORMAT_CSR: "sputnik-csr",
            FORMAT_BLOCKED_ELL: "cusparse-blocked-ell",
            FORMAT_DENSE: "cublas-dense",
        }[fmt]
        assert decision.backend == expected_backend
        out = dispatcher.execute(operand, b)
        direct = _direct_backend_call(fmt, pruned, v, n, m, b)
        assert np.array_equal(out, direct)
        # ... and stay within the existing fp16 tolerances of the dense
        # reference on the same pruned operand.
        reference = reference_matmul_fp16(pruned, b)
        assert np.allclose(out, reference, atol=5e-2, rtol=5e-3)

    @pytest.mark.parametrize("pattern", DISPATCH_PATTERNS, ids=lambda p: "v%d_%d:%d" % p)
    @pytest.mark.parametrize("shape", DISPATCH_SHAPES, ids=lambda s: "%dx%dx%d" % s)
    def test_multi_format_choice_is_perf_model_argmin(self, rng, pattern, shape):
        """With every format available the dispatcher must pick the argmin
        of the directly-computed tuner/perf-model estimates — and still be
        bit-identical to that backend's direct call."""
        v, n, m = pattern
        r, k, c = shape
        pruned = _pruned_operand_matrix(rng, r, k, v, n, m)
        b = rng.normal(size=(k, c)).astype(np.float32)
        operand = SpmmOperand.from_dense(
            pruned,
            formats=(FORMAT_VNM, FORMAT_CSR, FORMAT_BLOCKED_ELL),
            v=v,
            n=n,
            m=m,
            block_size=_ELL_BLOCK,
        )
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, c)
        # argmin over the same estimators, invoked directly per backend.
        direct_costs = {
            name: dispatcher.backend(name).estimate(operand, c, dispatcher.gpu).time_us
            for name in ("spatha-plan", "sputnik-csr", "cusparse-blocked-ell", "cublas-dense")
        }
        assert decision.backend == min(direct_costs, key=direct_costs.get)
        assert decision.costs == pytest.approx(direct_costs)
        out = dispatcher.execute(operand, b)
        fmt = dispatcher.backend(decision.backend).format
        direct = _direct_backend_call(fmt, pruned, v, n, m, b)
        assert np.array_equal(out, direct)


class TestPerformanceOrderings:
    """The qualitative orderings of Figure 13."""

    @pytest.fixture
    def bert_large_ffn(self):
        # BERT-large FFN output-projection GEMM (R=hidden, K=intermediate),
        # batch 16 x seq 512 tokens.
        return dict(r=1024, k=4096, c=8192)

    def test_spatha_beats_every_sparse_baseline_at_90_percent(self, gpu, bert_large_ffn):
        p = GemmProblem.from_nm(n=2, m=20, v=128, **bert_large_ffn)
        t_spatha = spatha_time(p, gpu=gpu).time_us
        assert t_spatha < sputnik.estimate_time(p, gpu=gpu).time_us
        assert t_spatha < clasp.estimate_time(p, gpu=gpu).time_us
        assert t_spatha < cublas.estimate_time(p, gpu=gpu).time_us

    def test_sputnik_clasp_beat_cublas_only_at_high_sparsity(self, gpu, bert_large_ffn):
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        moderate = GemmProblem(sparsity=0.7, **bert_large_ffn)
        extreme = GemmProblem(sparsity=0.98, **bert_large_ffn)
        assert sputnik.estimate_time(moderate, gpu=gpu).time_us > dense_time
        assert clasp.estimate_time(moderate, gpu=gpu).time_us > dense_time
        assert sputnik.estimate_time(extreme, gpu=gpu).time_us < dense_time
        assert clasp.estimate_time(extreme, gpu=gpu).time_us < dense_time

    def test_third_party_libraries_cap_in_low_single_digits(self, gpu, bert_large_ffn):
        """The paper reports Sputnik/CLASP saturating around ~3x; the model
        keeps them in the low single digits, far below Spatha's 25x+."""
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        extreme = GemmProblem(sparsity=0.98, **bert_large_ffn)
        assert dense_time / sputnik.estimate_time(extreme, gpu=gpu).time_us < 5.0
        assert dense_time / clasp.estimate_time(extreme, gpu=gpu).time_us < 7.5
        spatha_98 = spatha_time(GemmProblem.from_nm(n=2, m=100, v=128, **bert_large_ffn), gpu=gpu)
        assert dense_time / spatha_98.time_us > 2 * dense_time / clasp.estimate_time(extreme, gpu=gpu).time_us

    def test_spatha_at_50_percent_is_about_2x(self, gpu, bert_large_ffn):
        p = GemmProblem.from_nm(n=2, m=4, v=128, **bert_large_ffn)
        dense_time = cublas.estimate_time(p, gpu=gpu).time_us
        assert 1.5 < dense_time / spatha_time(p, gpu=gpu).time_us <= 2.0

    def test_spatha_speedup_monotone_in_sparsity(self, gpu, bert_large_ffn):
        dense_time = cublas.estimate_time(GemmProblem(**bert_large_ffn), gpu=gpu).time_us
        speedups = []
        for m in (4, 8, 10, 20, 40, 100):
            p = GemmProblem.from_nm(n=2, m=m, v=128, **bert_large_ffn)
            speedups.append(dense_time / spatha_time(p, gpu=gpu).time_us)
        assert all(b >= a - 1e-6 for a, b in zip(speedups, speedups[1:]))
