"""Unit tests for the multi-backend dispatch registry."""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels import cublas, sputnik
from repro.kernels.dispatch import (
    Backend,
    CublasDenseBackend,
    KernelDispatcher,
    SpmmOperand,
    default_dispatcher,
)
from repro.kernels.spatha import SpmmPlan
from repro.pruning.masks import apply_mask
from repro.hardware.spec import rtx3090
from repro.pruning.vnm import vnm_mask


@pytest.fixture
def pruned(rng):
    dense = rng.normal(size=(32, 64))
    return apply_mask(dense, vnm_mask(dense, v=8, n=2, m=8)).astype(np.float32)


@pytest.fixture
def operand(pruned):
    return SpmmOperand.from_dense(
        pruned, formats=("vnm", "csr", "blocked_ell"), v=8, n=2, m=8, block_size=8
    )


class TestSpmmOperand:
    def test_formats_and_pattern(self, operand):
        assert operand.formats == ("blocked_ell", "csr", "dense", "vnm")
        assert operand.pattern == (8, 2, 8)
        assert operand.shape == (32, 64)

    def test_allow_dense_false_excludes_fallback(self, pruned):
        op = SpmmOperand.from_dense(pruned, formats=("csr",), allow_dense=False)
        assert op.formats == ("csr",)

    def test_dense_view_matches_stored_formats(self, operand, pruned):
        assert np.allclose(operand.dense(), pruned, atol=1e-6)

    def test_dense_view_memoized(self, operand):
        assert operand.dense() is operand.dense()

    def test_from_vnm(self, pruned):
        vnm = VNMSparseMatrix.from_dense(pruned, v=8, n=2, m=8, strict=True)
        op = SpmmOperand.from_vnm(vnm)
        assert op.formats == ("dense", "vnm")
        assert op.pattern == (8, 2, 8)

    def test_sparsity_from_pattern_and_counts(self, pruned):
        vnm_op = SpmmOperand.from_vnm(VNMSparseMatrix.from_dense(pruned, v=8, n=2, m=8))
        assert vnm_op.sparsity() == pytest.approx(0.75)
        csr_op = SpmmOperand.from_dense(pruned, formats=("csr",))
        assert csr_op.sparsity() == pytest.approx(
            1.0 - np.count_nonzero(pruned) / pruned.size
        )

    def test_rejects_empty_and_mismatched(self, pruned, rng):
        with pytest.raises(ValueError):
            SpmmOperand(allow_dense=False)
        with pytest.raises(ValueError):
            SpmmOperand(
                csr=CSRMatrix.from_dense(pruned),
                dense=rng.normal(size=(8, 8)).astype(np.float32),
            )

    def test_all_zero_operand_has_model_safe_sparsity(self):
        op = SpmmOperand.from_dense(np.zeros((8, 16), dtype=np.float32), formats=("csr",))
        assert op.sparsity() < 1.0
        assert op.problem(4).sparsity < 1.0

    def test_unknown_format_rejected(self, pruned):
        with pytest.raises(ValueError):
            SpmmOperand.from_dense(pruned, formats=("coo",))


class TestDispatchDecisions:
    def test_chosen_backend_is_cost_argmin(self, operand):
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, 24)
        assert set(decision.costs) == {
            "spatha-plan",
            "sputnik-csr",
            "cusparse-blocked-ell",
            "cublas-dense",
        }
        assert decision.backend == min(decision.costs, key=decision.costs.get)
        assert decision.ranking[0][0] == decision.backend

    def test_costs_match_direct_estimators(self, operand):
        """The registry ranks with the same tuner/perf-model estimates a
        caller would compute by hand."""
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, 24)
        assert decision.costs["sputnik-csr"] == pytest.approx(
            sputnik.estimate_time(
                operand.problem(24),
                gpu=dispatcher.gpu,
                load_imbalance=max(1.0, operand.csr.load_imbalance()),
            ).time_us
        )
        assert decision.costs["cublas-dense"] == pytest.approx(
            cublas.estimate_time(operand.problem(24), gpu=dispatcher.gpu).time_us
        )

    def test_decision_memoized_per_shape_bucket(self, operand):
        dispatcher = KernelDispatcher()
        d1 = dispatcher.dispatch(operand, 20)
        assert dispatcher.dispatch(operand, 24) is d1  # same bucket (32)
        d2 = dispatcher.dispatch(operand, 40)  # bucket 64
        assert d2 is not d1
        assert dispatcher.cache_size() == 2
        dispatcher.clear_cache()
        assert dispatcher.cache_size() == 0

    def test_shape_bucket_boundaries(self):
        assert KernelDispatcher.shape_bucket(1) == 1
        assert KernelDispatcher.shape_bucket(32) == 32
        assert KernelDispatcher.shape_bucket(33) == 64
        with pytest.raises(ValueError):
            KernelDispatcher.shape_bucket(0)

    def test_signature_separates_formats_and_pattern(self, pruned):
        dispatcher = KernelDispatcher()
        a = SpmmOperand.from_dense(pruned, formats=("csr",))
        b = SpmmOperand.from_dense(pruned, formats=("vnm",), v=8, n=2, m=8)
        assert dispatcher.signature(a, 16) != dispatcher.signature(b, 16)

    def test_same_shape_different_content_not_aliased(self, rng):
        """Two same-shape operands with different sparsity must get their
        own decisions on a SHARED dispatcher — each matching the argmin of
        its own cost model (regression: the signature once omitted operand
        content, so the second operand inherited the first's decision)."""
        shape = (256, 256)
        sparse_dense = (rng.normal(size=shape) * (rng.random(size=shape) < 0.01)).astype(
            np.float32
        )
        dense_dense = (rng.normal(size=shape) * (rng.random(size=shape) < 0.95)).astype(
            np.float32
        )
        nearly_empty = SpmmOperand.from_dense(sparse_dense, formats=("csr",))
        nearly_full = SpmmOperand.from_dense(dense_dense, formats=("csr",))
        shared = KernelDispatcher()
        d1 = shared.dispatch(nearly_empty, 64)
        d2 = shared.dispatch(nearly_full, 64)
        assert d1 is not d2
        for operand, decision in ((nearly_empty, d1), (nearly_full, d2)):
            fresh_costs = {
                name: shared.backend(name).estimate(operand, 64, shared.gpu).time_us
                for name in decision.costs
            }
            assert decision.backend == min(fresh_costs, key=fresh_costs.get)
            assert decision.costs == pytest.approx(fresh_costs)

    def test_large_vnm_problem_prefers_spatha(self, rng):
        dense = rng.normal(size=(1024, 2048))
        pruned = apply_mask(dense, vnm_mask(dense, v=64, n=2, m=16)).astype(np.float32)
        op = SpmmOperand.from_dense(pruned, formats=("vnm", "csr"), v=64, n=2, m=16)
        decision = KernelDispatcher().dispatch(op, 4096)
        assert decision.backend == "spatha-plan"

    def test_cache_hit_miss_counters(self, operand):
        dispatcher = KernelDispatcher()
        empty = {"size": 0, "hits": 0, "misses": 0}
        assert dispatcher.cache_stats() == {
            **empty,
            "estimate_size": 0,
            "estimate_hits": 0,
            "estimate_misses": 0,
        }
        dispatcher.dispatch(operand, 20)  # miss (bucket 32)
        dispatcher.dispatch(operand, 24)  # hit (same bucket)
        dispatcher.dispatch(operand, 40)  # miss (bucket 64)
        stats = dispatcher.cache_stats()
        assert (stats["size"], stats["hits"], stats["misses"]) == (2, 1, 2)
        # Counters are cumulative traffic: clear_cache drops entries only,
        # and re-ranking a dropped signature counts as a fresh miss.
        dispatcher.clear_cache()
        stats = dispatcher.cache_stats()
        assert stats["size"] == 0 and stats["hits"] == 1 and stats["misses"] == 2
        dispatcher.dispatch(operand, 20)
        stats = dispatcher.cache_stats()
        assert (stats["size"], stats["hits"], stats["misses"]) == (1, 1, 3)

    def test_estimate_is_memoized_per_exact_c(self, operand):
        dispatcher = KernelDispatcher()
        first = dispatcher.estimate(operand, 24)
        again = dispatcher.estimate(operand, 24)
        assert again is first  # shared, read-only by contract
        other_c = dispatcher.estimate(operand, 20)  # same bucket, different C
        assert other_c is not first
        stats = dispatcher.cache_stats()
        assert stats["estimate_hits"] == 1 and stats["estimate_misses"] == 2
        # The memo clears with the decision cache; counters survive.
        dispatcher.clear_cache()
        assert dispatcher.cache_stats()["estimate_size"] == 0
        dispatcher.estimate(operand, 24)
        assert dispatcher.cache_stats()["estimate_misses"] == 3

    def test_warm_many_covers_all_operands_and_buckets(self, pruned, rng):
        other_dense = (rng.normal(size=(16, 64)) * (rng.random(size=(16, 64)) < 0.3)).astype(
            np.float32
        )
        operands = [
            SpmmOperand.from_dense(pruned, formats=("csr",)),
            SpmmOperand.from_dense(other_dense, formats=("csr",)),
        ]
        dispatcher = KernelDispatcher()
        assert dispatcher.warm_many(operands, cs=(8, 64)) == 2
        assert dispatcher.cache_size() == 4  # 2 operands x 2 buckets, distinct sigs
        hits_before = dispatcher.cache_hits
        for op in operands:
            for c in (8, 64):
                dispatcher.dispatch(op, c)
        assert dispatcher.cache_hits == hits_before + 4  # all pre-ranked

    def test_no_supported_backend_raises(self, pruned):
        dispatcher = KernelDispatcher(backends=[CublasDenseBackend()])
        op = SpmmOperand.from_dense(pruned, formats=("csr",), allow_dense=False)
        with pytest.raises(ValueError):
            dispatcher.dispatch(op, 8)

    def test_register_rejects_duplicates(self):
        dispatcher = KernelDispatcher()
        with pytest.raises(ValueError):
            dispatcher.register(CublasDenseBackend())
        with pytest.raises(KeyError):
            dispatcher.backend("nonexistent")

    def test_custom_backend_can_win(self, operand):
        class FreeLunch(Backend):
            name = "free-lunch"
            format = "dense"

            def estimate(self, operand, c, gpu):
                result = CublasDenseBackend().estimate(operand, c, gpu)
                result.cost.overhead_cycles = 0.0
                result.cost.compute_cycles = 1e-9
                result.cost.gmem_cycles = 0.0
                result.cost.smem_cycles = 0.0
                return result

            def execute(self, operand, b):
                return CublasDenseBackend().execute(operand, b)

        dispatcher = KernelDispatcher()
        dispatcher.register(FreeLunch())
        assert dispatcher.dispatch(operand, 24).backend == "free-lunch"


class TestMeasuredDispatch:
    """The measurement-fed half of the ranking: record_runtime/EWMA/reranks."""

    def test_injected_measurements_rerank_the_decision(self, operand):
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, 24)
        modelled_best = decision.backend
        loser = next(n for n in sorted(decision.costs) if n != modelled_best)
        assert decision.measured == {}

        # Reality disagrees with the model: the modelled winner is slow,
        # the modelled loser fast.  The cached decision must flip.
        dispatcher.record_runtime(operand, 24, modelled_best, 5000.0)
        dispatcher.record_runtime(operand, 24, loser, 1.0)

        assert decision.backend == loser
        assert decision.ranking[0][0] == loser
        assert dispatcher.measured_reranks >= 1
        # Later dispatches reuse the reranked cached decision.
        assert dispatcher.dispatch(operand, 24).backend == loser

    def test_blend_scales_unobserved_candidates_onto_measured_scale(self, operand):
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, 24)
        name = decision.backend
        dispatcher.record_runtime(operand, 24, name, 100.0)
        # Every candidate gets an effective cost; the observed one is the
        # EWMA itself, the others are modelled * (observed/modelled) scale.
        assert set(decision.measured) == set(decision.costs)
        assert decision.measured[name] == pytest.approx(100.0)
        scale = 100.0 / decision.costs[name]
        for other, cost in decision.costs.items():
            if other != name:
                assert decision.measured[other] == pytest.approx(cost * scale)

    def test_ewma_smoothing_and_health_stats(self, operand):
        dispatcher = KernelDispatcher()  # default alpha 0.25
        decision = dispatcher.dispatch(operand, 24)
        name = decision.backend
        dispatcher.record_runtime(operand, 24, name, 100.0)
        dispatcher.record_runtime(operand, 24, name, 200.0)
        stats = dispatcher.health_stats()
        assert stats["observations"] == 2
        assert stats["observed_backends"][name]["samples"] == 2
        # EWMA: 0.25 * 200 + 0.75 * 100
        assert stats["observed_backends"][name]["mean_ewma_us"] == pytest.approx(125.0)

    def test_record_runtime_validates_inputs(self, operand):
        dispatcher = KernelDispatcher()
        with pytest.raises(ValueError):
            dispatcher.record_runtime(operand, 24, "spatha-plan", 0.0)
        with pytest.raises(ValueError):
            dispatcher.record_runtime(operand, 24, "spatha-plan", -1.0)
        with pytest.raises(KeyError):
            dispatcher.record_runtime(operand, 24, "no-such-backend", 1.0)
        with pytest.raises(ValueError):
            KernelDispatcher(measurement_alpha=0.0)
        with pytest.raises(ValueError):
            KernelDispatcher(measurement_alpha=1.5)

    def test_observe_runtimes_feeds_execute(self, operand, rng):
        dispatcher = KernelDispatcher(observe_runtimes=True)
        b = rng.normal(size=(64, 8)).astype(np.float32)
        dispatcher.execute(operand, b)
        stats = dispatcher.health_stats()
        assert stats["observations"] >= 1
        assert stats["observed_backends"]  # at least the executing backend

    def test_observation_off_by_default_keeps_model_ranking(self, operand, rng):
        dispatcher = KernelDispatcher()
        b = rng.normal(size=(64, 8)).astype(np.float32)
        dispatcher.execute(operand, b)
        assert dispatcher.health_stats()["observations"] == 0
        assert dispatcher.dispatch(operand, 8).measured == {}


class TestDispatchedExecution:
    def test_bias_epilogue_matches_plan(self, operand, rng):
        b = rng.normal(size=(64, 12)).astype(np.float32)
        bias = rng.normal(size=32).astype(np.float32)
        dispatcher = KernelDispatcher()
        with_bias = dispatcher.execute(operand, b, bias=bias)
        without = dispatcher.execute(operand, b)
        assert np.allclose(with_bias - without, bias[:, None], atol=1e-6)
        with pytest.raises(ValueError):
            dispatcher.execute(operand, b, bias=np.ones(31, dtype=np.float32))

    def test_rhs_shape_validated(self, operand):
        dispatcher = KernelDispatcher()
        with pytest.raises(ValueError):
            dispatcher.execute(operand, np.ones(64, dtype=np.float32))
        with pytest.raises(ValueError):
            dispatcher.execute(operand, np.ones((63, 4), dtype=np.float32))

    @pytest.mark.parametrize("formats", [("vnm",), ("csr",), ("blocked_ell",)])
    def test_batched_execution_is_slab_exact(self, pruned, rng, formats):
        kwargs = dict(v=8, n=2, m=8) if "vnm" in formats else {}
        op = SpmmOperand.from_dense(
            pruned, formats=formats, block_size=8, allow_dense=False, **kwargs
        )
        dispatcher = KernelDispatcher()
        batch = rng.normal(size=(3, 64, 10)).astype(np.float32)
        out = dispatcher.execute(op, batch)
        for i in range(3):
            assert np.array_equal(out[i], dispatcher.execute(op, batch[i]))

    def test_warm_builds_the_spatha_plan(self, pruned):
        vnm = VNMSparseMatrix.from_dense(pruned, v=8, n=2, m=8)
        op = SpmmOperand.from_vnm(vnm)
        assert ("spmm_plan", "auto") not in vnm._memo
        KernelDispatcher().warm(op)
        assert isinstance(vnm._memo[("spmm_plan", "auto")], SpmmPlan)

    def test_warm_prepopulates_dispatch_decisions(self, operand):
        dispatcher = KernelDispatcher()
        dispatcher.warm(operand, cs=(8, 64))
        assert dispatcher.cache_size() == 2  # buckets 8 and 64 pre-ranked

    def test_default_dispatcher_is_shared(self):
        assert default_dispatcher() is default_dispatcher()

    def test_nonfinite_rhs_demotes_dense_fallback(self):
        """A non-finite B row outside the sparse structure's selection must
        not leak NaN through the dense fallback (0 * inf) — the dispatcher
        applies the same demotion SpmmPlan's dense strategy does."""
        a_dense = np.zeros((8, 8), dtype=np.float32)
        a_dense[:, 0] = 1.0  # only column 0 selected
        vnm = VNMSparseMatrix.from_dense(a_dense, v=8, n=2, m=8, strict=True)
        op = SpmmOperand.from_vnm(vnm)  # dense fallback allowed
        b = np.ones((8, 4), dtype=np.float32)
        b[5] = 1e6  # overflows fp16 -> inf, in an unselected row
        dispatcher = KernelDispatcher()
        out = dispatcher.execute(op, b)
        assert np.isfinite(out).all()
        from repro.kernels.spatha import spmm as spatha_spmm

        assert np.array_equal(out, spatha_spmm(vnm, b))

    def test_nonfinite_demotion_is_per_slab(self):
        """Regression: a non-finite slab in a batched RHS must demote only
        ITSELF to the sparse backend — demoting the whole batch would make
        a request's backend (and bits) depend on its batchmates, breaking
        the serving guarantee that batched == sequential execution."""
        a_dense = np.zeros((8, 8), dtype=np.float32)
        a_dense[:, 0] = 1.0  # only column 0 selected by the sparse structure
        vnm = VNMSparseMatrix.from_dense(a_dense, v=8, n=2, m=8, strict=True)
        op = SpmmOperand.from_vnm(vnm)  # candidates: spatha-plan + cublas-dense
        dispatcher = KernelDispatcher()
        assert dispatcher.dispatch(op, 4).backend == "cublas-dense"  # tiny problem

        batch = np.ones((3, 8, 4), dtype=np.float32)
        batch[1, 5] = 1e6  # overflows fp16 in an unselected row of slab 1 only
        out = dispatcher.execute(op, batch)
        assert np.isfinite(out).all()
        # Every slab matches its own sequential single-slab execution.
        for i in range(3):
            assert np.array_equal(out[i], dispatcher.execute(op, batch[i])), i
        # And the finite slabs still took the dense fast path (identical to
        # a dense-only dispatcher's output on those slabs).
        dense_only = KernelDispatcher(backends=[CublasDenseBackend()])
        for i in (0, 2):
            assert np.array_equal(out[i], dense_only.execute(op, batch[i]))

    def test_dense_only_operand_keeps_dense_on_nonfinite(self):
        """With no sparse backend available the dense fallback still runs
        (NaN is then the honest dense-math answer, same as cublas.gemm)."""
        dense = np.zeros((4, 8), dtype=np.float32)
        dense[0, 0] = 1.0
        op = SpmmOperand(dense=dense)
        b = np.full((8, 2), np.inf, dtype=np.float32)
        out = KernelDispatcher().execute(op, b)
        from repro.kernels import cublas

        assert np.array_equal(out, cublas.gemm(dense, b), equal_nan=True)


class ScriptedFailureBackend(Backend):
    """A cheapest-ranked backend whose execute fails while ``failing`` is set.

    Numerics delegate to cuBLAS, so when it succeeds its output is the
    dense backend's exact bits; the near-zero cost model makes it the
    dispatch argmin, which is what lets the tests steer the chosen backend
    into failure without touching the real libraries.
    """

    name = "scripted"
    format = "dense"

    def __init__(self, failing: bool = True):
        self.failing = failing
        self.execute_calls = 0
        self._inner = CublasDenseBackend()

    def estimate(self, operand, c, gpu):
        result = self._inner.estimate(operand, c, gpu)
        result.cost.overhead_cycles = 0.0
        result.cost.compute_cycles = 1e-9
        result.cost.gmem_cycles = 0.0
        result.cost.smem_cycles = 0.0
        return result

    def execute(self, operand, b):
        self.execute_calls += 1
        if self.failing:
            from repro.kernels.dispatch import BackendExecutionError

            raise BackendExecutionError("scripted failure", backend=self.name)
        return self._inner.execute(operand, b)


@pytest.mark.faults
class TestFailoverAndQuarantine:
    def _dispatcher(self, failing=True, failure_threshold=2, probe_interval=3):
        dispatcher = KernelDispatcher(
            failure_threshold=failure_threshold, probe_interval=probe_interval
        )
        scripted = ScriptedFailureBackend(failing=failing)
        dispatcher.register(scripted)
        return dispatcher, scripted

    def test_failover_output_is_bit_exact_fallback(self, operand, rng):
        """When the chosen backend fails, the next-ranked one serves the
        call and the result is bit-for-bit that backend's direct output."""
        dispatcher, scripted = self._dispatcher()
        b = rng.normal(size=(64, 12)).astype(np.float32)
        decision = dispatcher.dispatch(operand, 12)
        assert decision.backend == "scripted"
        fallback = next(n for n, _ in decision.ranking if n != "scripted")
        out = dispatcher.execute(operand, b)
        direct = dispatcher.backend(fallback).execute(operand, b)
        assert np.array_equal(out, direct)
        assert decision.failovers == {f"scripted->{fallback}": 1}
        assert dispatcher.health_stats()["failovers"] == 1

    def test_quarantine_after_threshold_and_probe_readmission(self, operand, rng):
        """K consecutive failures quarantine the backend; after the probe
        interval it gets one probe attempt, and a healed backend serves
        again (bit-exact against its own direct execution)."""
        dispatcher, scripted = self._dispatcher(failure_threshold=2, probe_interval=3)
        b = rng.normal(size=(64, 12)).astype(np.float32)
        dispatcher.execute(operand, b)  # failure 1 (failover)
        assert not dispatcher.is_quarantined("scripted")
        dispatcher.execute(operand, b)  # failure 2 -> quarantined
        assert dispatcher.is_quarantined("scripted")
        assert dispatcher.quarantined() == ("scripted",)
        # While quarantined, the backend is not attempted at all while
        # its countdown runs (probe_interval executes pass it over).
        calls_before = scripted.execute_calls
        for _ in range(3):
            dispatcher.execute(operand, b)
        assert scripted.execute_calls == calls_before
        # Heal the backend; the countdown has expired, so the next
        # execute admits it as a probe.
        scripted.failing = False
        out = dispatcher.execute(operand, b)
        assert not dispatcher.is_quarantined("scripted")
        assert dispatcher.health_stats()["readmissions"] == 1
        assert np.array_equal(out, ScriptedFailureBackend(failing=False).execute(operand, b))

    def test_failed_probe_requarantines(self, operand, rng):
        dispatcher, scripted = self._dispatcher(failure_threshold=1, probe_interval=2)
        b = rng.normal(size=(64, 12)).astype(np.float32)
        dispatcher.execute(operand, b)  # quarantined immediately (K=1)
        assert dispatcher.is_quarantined("scripted")
        dispatcher.execute(operand, b)  # countdown 2 -> 1
        dispatcher.execute(operand, b)  # countdown 1 -> 0
        calls_before = scripted.execute_calls
        assert calls_before == 1  # only the original failure
        dispatcher.execute(operand, b)  # probe attempt -> fails -> requarantined
        assert scripted.execute_calls == calls_before + 1
        assert dispatcher.is_quarantined("scripted")
        assert dispatcher.health_stats()["quarantines"] == 1  # one event, not two

    def test_quarantine_leaves_no_stale_decisions(self, operand, rng):
        """The decision cache must stay quarantine-independent: memoized
        decisions keep the cost argmin while the backend sits out (failover
        happens at execute time), so after re-admission the SAME cached
        decision routes traffic to it again — no stale entries to flush."""
        dispatcher, scripted = self._dispatcher(failure_threshold=1, probe_interval=1)
        b = rng.normal(size=(64, 12)).astype(np.float32)
        decision = dispatcher.dispatch(operand, 12)
        cache_size = dispatcher.cache_size()
        dispatcher.execute(operand, b)  # fail -> quarantine
        assert dispatcher.is_quarantined("scripted")
        # The memo still names the cost argmin and no new entries appeared.
        assert dispatcher.dispatch(operand, 12) is decision
        assert decision.backend == "scripted"
        assert dispatcher.cache_size() == cache_size
        dispatcher.execute(operand, b)  # passed over once (countdown 1 -> 0)
        scripted.failing = False
        dispatcher.execute(operand, b)  # probe succeeds -> readmitted
        assert not dispatcher.is_quarantined("scripted")
        # Same cached decision, and execution routes to the backend again.
        assert dispatcher.dispatch(operand, 12) is decision
        calls_before = scripted.execute_calls
        out = dispatcher.execute(operand, b)
        assert scripted.execute_calls == calls_before + 1
        assert np.array_equal(out, ScriptedFailureBackend(failing=False).execute(operand, b))

    def test_all_candidates_failing_raises(self, operand, rng):
        from repro.kernels.dispatch import BackendExecutionError
        from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec

        dispatcher = KernelDispatcher()
        names = [backend.name for backend in dispatcher.backends]
        plan = FaultPlan([FaultSpec(backend=n, kind="persistent", at_call=0) for n in names])
        FaultInjector(plan).arm(dispatcher)
        with pytest.raises(BackendExecutionError) as excinfo:
            dispatcher.execute(operand, rng.normal(size=(64, 8)).astype(np.float32))
        assert "all candidate backends failed" in str(excinfo.value)

    def test_breaker_parameters_validated(self):
        with pytest.raises(ValueError):
            KernelDispatcher(failure_threshold=0)
        with pytest.raises(ValueError):
            KernelDispatcher(probe_interval=0)


class TestNarrowedTunerException:
    def test_plain_valueerror_from_tuner_propagates(self, operand, monkeypatch):
        """The dispatcher's proxy re-costing must catch ONLY the typed
        UnsupportedTilingError; a genuine model bug surfacing as a plain
        ValueError has to propagate instead of being silently swallowed."""
        from repro.kernels.dispatch import SpathaPlanBackend
        from repro.kernels.spatha.tuner import SpathaTuner

        def boom(self, problem):
            raise ValueError("boom: genuine model bug")

        monkeypatch.setattr(SpathaTuner, "best_result", boom)
        backend = SpathaPlanBackend()
        with pytest.raises(ValueError, match="genuine model bug"):
            backend.estimate(operand, 16, rtx3090())

    def test_unlaunchable_tiling_still_proxied(self, rng):
        """The expected failure (V=8 has no template instantiation) is
        typed as UnsupportedTilingError and still handled by costing the
        padded proxy launch — dispatch keeps working for non-hardware V."""
        from repro.kernels.spatha import UnsupportedTilingError

        assert issubclass(UnsupportedTilingError, ValueError)
        dense = rng.normal(size=(32, 64))
        pruned = apply_mask(dense, vnm_mask(dense, v=8, n=2, m=8)).astype(np.float32)
        op = SpmmOperand.from_dense(pruned, formats=("vnm",), v=8, n=2, m=8)
        decision = KernelDispatcher().dispatch(op, 16)
        assert "spatha-plan" in decision.costs
        assert decision.costs["spatha-plan"] > 0
