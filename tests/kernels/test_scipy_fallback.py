"""SciPy-absent degradation tests.

The container toolchain ships SciPy, but the engine must not *require* it:
``sputnik.spmm`` falls back to the pure-NumPy segmented reduction and the
synthetic gradient generator falls back to a NumPy AR(1) filter, so a full
``benchmarks/run_bench.py --quick`` sweep completes without SciPy instead
of failing the whole run.  These tests simulate the absence by poisoning
``sys.modules`` (the documented way to make ``import scipy`` raise).
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.kernels import sputnik
from repro.pruning.second_order.fisher import _ar1_filter, synthetic_gradients


@pytest.fixture
def no_scipy(monkeypatch):
    """Make every ``import scipy[.x]`` raise ImportError."""
    for mod in ("scipy", "scipy.signal", "scipy.sparse"):
        monkeypatch.setitem(sys.modules, mod, None)


def test_sputnik_spmm_falls_back_to_segmented(no_scipy, rng):
    dense = rng.normal(size=(16, 24)) * (rng.random(size=(16, 24)) < 0.3)
    a = CSRMatrix.from_dense(dense)
    b = rng.normal(size=(24, 6)).astype(np.float32)
    out = sputnik.spmm(a, b)  # must not raise
    ref = sputnik.spmm_loop_reference(a, b)
    assert np.allclose(out, ref, atol=1e-3, rtol=1e-5)
    # The fallback is the segmented-reduction path, bit for bit.
    data16 = np.asarray(a.data, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    assert np.array_equal(out, sputnik._spmm_segmented(a, data16, b16))


def test_synthetic_gradients_without_scipy(no_scipy, rng):
    w = rng.normal(size=(8, 16))
    grads = synthetic_gradients(w, num_samples=4, seed=0)
    assert grads.shape == (4, w.size)
    assert np.isfinite(grads).all()


def test_ar1_fallback_matches_lfilter():
    """The NumPy AR(1) filter reproduces scipy.signal.lfilter (when SciPy
    is present to compare against)."""
    scipy_signal = pytest.importorskip("scipy.signal")
    rng = np.random.default_rng(0)
    for shape in [(3, 1), (4, 7), (3, 128), (5, 300)]:
        x = rng.standard_normal(shape)
        for a in (0.25, 0.5, 0.9):
            ref = scipy_signal.lfilter([np.sqrt(1.0 - a * a)], [1.0, -a], x, axis=1)
            assert np.allclose(_ar1_filter(x, a), ref, atol=1e-12)


def test_ar1_fallback_no_overflow_for_small_decay():
    """Small decay values must not overflow on the masked upper triangle
    (the exponent is clamped before the mask)."""
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 200))
    # Harmless underflow to subnormals is fine; overflow/invalid are not.
    with np.errstate(over="raise", invalid="raise"):
        out = _ar1_filter(x, 0.003)
    assert np.isfinite(out).all()


def test_synthetic_gradients_agree_with_and_without_scipy(monkeypatch, rng):
    """The gradient generator must produce (numerically) the same samples
    either way, so a SciPy-less box reproduces the same pruning decisions."""
    w = rng.normal(size=(6, 12))
    with_scipy = synthetic_gradients(w, num_samples=5, seed=3)
    for mod in ("scipy", "scipy.signal", "scipy.sparse"):
        monkeypatch.setitem(sys.modules, mod, None)
    without = synthetic_gradients(w, num_samples=5, seed=3)
    assert np.allclose(with_scipy, without, atol=1e-10)


def _load_run_bench():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
    spec = importlib.util.spec_from_file_location("run_bench_under_test", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_run_bench_quick_path_survives_without_scipy(no_scipy):
    """Every bench family of the --quick sweep completes without SciPy
    (shrunk shapes keep this a sub-second smoke test)."""
    run_bench = _load_run_bench()
    rng = np.random.default_rng(0)
    entries = []
    run_bench.bench_spatha_spmm(entries, 64, 8, 2, 4, rng)
    run_bench.bench_baseline_kernels(entries, 32, rng)
    run_bench.bench_formats(entries, 32, rng)
    run_bench.bench_pruning(entries, 8, 32, rng)
    run_bench.bench_serving(entries, size=64, num_requests=4, tokens=8, rng=rng)
    assert len(entries) >= 10
    for entry in entries:
        assert np.isfinite(entry["max_abs_diff"])
        assert entry["vectorized_s"] >= 0  # rounded; tiny shapes may print 0.0
        assert np.isfinite(entry["speedup"])
