"""Tests for Spatha's performance model, stages and tuner.

These encode the qualitative behaviours the paper reports rather than
absolute times: speedups grow with K and with sparsity, never exceed the
theoretical cap, the column-loc overhead is small, 128-bit output stores
beat 32-bit ones, and the tuner never returns a configuration worse than
the default.
"""

import pytest

from repro.kernels import cublas
from repro.kernels.common import GemmProblem
from repro.kernels.spatha import (
    SpathaTuner,
    compute_stage_breakdown,
    compute_tile_counts,
    estimate_time,
    speedup_vs_dense,
    theoretical_speedup_cap,
)
from repro.kernels.spatha.config import default_config


def problem(k=4096, n=2, m=8, v=128, r=1024, c=4096):
    return GemmProblem.from_nm(r=r, k=k, c=c, n=n, m=m, v=v)


class TestTheoreticalCap:
    def test_paper_values(self):
        assert theoretical_speedup_cap(2, 10) == pytest.approx(5.0)
        assert theoretical_speedup_cap(2, 20) == pytest.approx(10.0)
        assert theoretical_speedup_cap(2, 40) == pytest.approx(20.0)
        assert theoretical_speedup_cap(2, 100) == pytest.approx(50.0)
        assert theoretical_speedup_cap(2, 4) == pytest.approx(2.0)

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            theoretical_speedup_cap(0, 4)


class TestEstimateTime:
    def test_requires_vnm_problem(self, gpu):
        with pytest.raises(ValueError):
            estimate_time(GemmProblem(1024, 4096, 4096), gpu=gpu)
        with pytest.raises(ValueError):
            estimate_time(GemmProblem(1024, 4096, 4096, sparsity=0.5, n=2, m=4), gpu=gpu)

    def test_time_positive_and_grows_with_k(self, gpu):
        t1 = estimate_time(problem(k=2048), gpu=gpu).time_us
        t2 = estimate_time(problem(k=8192), gpu=gpu).time_us
        assert 0 < t1 < t2

    def test_higher_sparsity_is_faster(self, gpu):
        t_2_8 = estimate_time(problem(m=8), gpu=gpu).time_us
        t_2_16 = estimate_time(problem(m=16), gpu=gpu).time_us
        t_2_32 = estimate_time(problem(m=32), gpu=gpu).time_us
        assert t_2_32 < t_2_16 < t_2_8

    def test_speedup_below_cap(self, gpu):
        for m in (8, 10, 20, 40):
            p = problem(k=8192, m=m)
            s = speedup_vs_dense(p, gpu=gpu)
            assert 1.0 < s <= theoretical_speedup_cap(2, m), m

    def test_speedup_grows_with_k(self, gpu):
        s_small = speedup_vs_dense(problem(k=768, m=20), gpu=gpu)
        s_large = speedup_vs_dense(problem(k=12288, m=20), gpu=gpu)
        assert s_large > s_small

    def test_approaches_cap_at_large_k(self, gpu):
        """At K=12288 the tuned kernel reaches ~80-95% of the theoretical
        cap, close to the 4.5x/8.5x/17.5x the paper reports."""
        tuner = SpathaTuner(gpu=gpu)
        for m, paper in ((10, 4.5), (20, 8.5), (40, 17.5)):
            p = problem(k=12288, m=m)
            dense = cublas.estimate_time(p, gpu=gpu)
            s = dense.time_us / tuner.best_result(p).time_us
            cap = theoretical_speedup_cap(2, m)
            assert 0.75 * cap <= s <= cap
            assert s == pytest.approx(paper, rel=0.35)

    def test_2_4_close_to_2x(self, gpu):
        p = problem(k=12288, m=4)
        dense = cublas.estimate_time(p, gpu=gpu)
        s = dense.time_us / SpathaTuner(gpu=gpu).best_result(p).time_us
        assert 1.6 <= s <= 2.0

    def test_faster_than_cusparselt_at_small_k(self, gpu):
        from repro.kernels import cusparselt

        p = problem(k=768, m=4)
        sp = SpathaTuner(gpu=gpu).best_result(p)
        cl = cusparselt.estimate_time(p, gpu=gpu)
        ratio = cl.time_us / sp.time_us
        assert 1.0 < ratio <= 1.45  # the paper reports up to 1.38x

    def test_k_not_divisible_by_m_is_padded(self, gpu):
        res = estimate_time(problem(k=4096, m=10), gpu=gpu)
        assert res.time_us > 0


class TestAblations:
    def test_columnloc_overhead_small(self, gpu):
        """Figure 9: the column-loc overhead is negligible (a few percent)."""
        cfg = default_config(128)
        p = problem(k=8192, m=20)
        with_cloc = estimate_time(p, config=cfg, gpu=gpu).time_us
        without = estimate_time(p, config=cfg.with_options(use_column_loc=False), gpu=gpu).time_us
        assert without <= with_cloc
        assert (with_cloc - without) / with_cloc < 0.15

    def test_columnloc_overhead_grows_with_sparsity(self, gpu):
        """The relative overhead is more visible at 2:100 than at 2:10."""
        cfg = default_config(128)

        def overhead(m):
            p = problem(k=8000 if m != 100 else 8000, m=m)
            w = estimate_time(p, config=cfg, gpu=gpu).time_us
            wo = estimate_time(p, config=cfg.with_options(use_column_loc=False), gpu=gpu).time_us
            return (w - wo) / w

        assert overhead(100) >= overhead(10) - 1e-6

    def test_wide_stores_faster_than_narrow(self, gpu):
        cfg = default_config(128)
        p = problem(k=4096, m=40)
        wide = estimate_time(p, config=cfg, gpu=gpu).time_us
        narrow = estimate_time(p, config=cfg.with_options(wide_output_stores=False), gpu=gpu).time_us
        assert narrow > wide
        assert narrow / wide < 2.5  # "up to 2x" in the paper

    def test_narrow_store_penalty_grows_with_sparsity(self, gpu):
        cfg = default_config(128)

        def penalty(m):
            p = problem(k=4096, m=m)
            wide = estimate_time(p, config=cfg, gpu=gpu).time_us
            narrow = estimate_time(p, config=cfg.with_options(wide_output_stores=False), gpu=gpu).time_us
            return narrow / wide

        assert penalty(100) > penalty(8)

    def test_larger_v_not_slower(self, gpu):
        """Figure 10: larger vector sizes perform at least as well."""
        p32 = estimate_time(problem(k=4096, m=40, v=32), config=default_config(32), gpu=gpu).time_us
        p128 = estimate_time(problem(k=4096, m=40, v=128), config=default_config(128), gpu=gpu).time_us
        assert p128 <= p32 * 1.05


class TestStageBreakdown:
    def test_traffic_positive_and_consistent(self, gpu):
        p = problem()
        cfg = default_config(128)
        counts = compute_tile_counts(p.r, p.k, p.c, p.m, cfg)
        stages = compute_stage_breakdown(p, cfg, counts, gpu)
        assert stages.issued_flops == pytest.approx(2.0 * p.r * (p.k // p.m * 4) * p.c)
        assert stages.traffic.gmem_read_bytes > 0
        assert stages.traffic.gmem_write_bytes == pytest.approx(p.r * p.c * 2.0)
        assert stages.stage3_smem_bytes == pytest.approx(p.r * p.c * 8.0)

    def test_columnloc_disabled_removes_traffic_and_stall(self, gpu):
        p = problem()
        cfg = default_config(128)
        counts = compute_tile_counts(p.r, p.k, p.c, p.m, cfg)
        with_cloc = compute_stage_breakdown(p, cfg, counts, gpu)
        without = compute_stage_breakdown(p, cfg.with_options(use_column_loc=False), counts, gpu)
        assert without.columnloc_stall_cycles == 0.0
        assert with_cloc.columnloc_stall_cycles > 0.0
        assert without.traffic.gmem_read_bytes < with_cloc.traffic.gmem_read_bytes

    def test_narrow_stores_have_conflicts(self, gpu):
        p = problem()
        cfg = default_config(128)
        counts = compute_tile_counts(p.r, p.k, p.c, p.m, cfg)
        wide = compute_stage_breakdown(p, cfg, counts, gpu)
        narrow = compute_stage_breakdown(p, cfg.with_options(wide_output_stores=False), counts, gpu)
        assert wide.output_conflict_factor == pytest.approx(1.0)
        assert narrow.output_conflict_factor >= 2.0

    def test_requires_nm_pattern(self, gpu):
        cfg = default_config(128)
        counts = compute_tile_counts(1024, 4096, 4096, 8, cfg)
        with pytest.raises(ValueError):
            compute_stage_breakdown(GemmProblem(1024, 4096, 4096), cfg, counts, gpu)


class TestTuner:
    def test_best_never_worse_than_default(self, gpu):
        tuner = SpathaTuner(gpu=gpu)
        p = problem(k=4096, m=8)
        best = tuner.best_result(p).time_us
        default = estimate_time(p, config=default_config(128), gpu=gpu).time_us
        assert best <= default + 1e-9

    def test_cache_reused(self, gpu):
        tuner = SpathaTuner(gpu=gpu)
        p = problem(k=2048, m=8)
        tuner.tune(p)
        assert tuner.cache_size() == 1
        tuner.tune(p)
        assert tuner.cache_size() == 1

    def test_tuning_record_ordering(self, gpu):
        tuner = SpathaTuner(gpu=gpu)
        record = tuner.tune(problem(k=2048, m=8))
        times = [t for _, t in record.results]
        assert times == sorted(times)
        assert record.tuning_gain >= 1.0
        assert record.best_time_us <= record.worst_time_us

    def test_requires_full_problem(self, gpu):
        with pytest.raises(ValueError):
            SpathaTuner(gpu=gpu).tune(GemmProblem(1024, 4096, 4096))
