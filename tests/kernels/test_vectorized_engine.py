"""Equivalence tests for the vectorized execution engine (kernel layer).

Property-style tests: random shapes and seeds, odd V/N/M combinations, and
single-block edge cases, asserting the batched paths match the retained
loop references — bit-exactly where the schedule guarantees it (the plan's
``gather`` strategy), to fp16 accumulation tolerance otherwise.
"""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.kernels import cusparse, sputnik
from repro.kernels.spatha import SpmmPlan, spmm, spmm_loop_reference, spmm_reference

# (rows, cols, c, v, n, m) — odd M, small V, single row-block, single group,
# one-column RHS.
VNM_CASES = [
    (64, 96, 32, 16, 2, 8),
    (32, 64, 7, 8, 2, 4),
    (8, 40, 5, 2, 1, 10),
    (16, 16, 3, 16, 2, 16),  # single row block, single group
    (6, 12, 1, 3, 3, 4),  # odd V, N == 3, C == 1
    (4, 8, 9, 1, 2, 8),  # V == 1
]


def make_vnm(rng, rows, cols, v, n, m):
    dense = rng.normal(size=(rows, cols)).astype(np.float32)
    return VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)


class TestSpmmPlanEquivalence:
    @pytest.mark.parametrize("case", VNM_CASES, ids=str)
    def test_gather_strategy_bit_matches_loop_reference(self, rng, case):
        rows, cols, c, v, n, m = case
        a = make_vnm(rng, rows, cols, v, n, m)
        b = rng.normal(size=(cols, c)).astype(np.float32)
        ref = spmm_loop_reference(a, b)
        out = SpmmPlan(a, strategy="gather").execute(b)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("case", VNM_CASES, ids=str)
    @pytest.mark.parametrize("strategy", ["dense", "auto"])
    def test_dense_and_auto_match_to_fp16_tolerance(self, rng, case, strategy):
        rows, cols, c, v, n, m = case
        a = make_vnm(rng, rows, cols, v, n, m)
        b = rng.normal(size=(cols, c)).astype(np.float32)
        ref = spmm_loop_reference(a, b)
        out = SpmmPlan(a, strategy=strategy).execute(b)
        assert np.allclose(out, ref, atol=1e-3, rtol=1e-5)

    @pytest.mark.parametrize("case", VNM_CASES, ids=str)
    def test_fast_path_matches_semantic_reference(self, rng, case):
        rows, cols, c, v, n, m = case
        a = make_vnm(rng, rows, cols, v, n, m)
        b = rng.normal(size=(cols, c)).astype(np.float32)
        assert np.allclose(spmm(a, b), spmm_reference(a, b), atol=5e-2, rtol=5e-3)

    @pytest.mark.parametrize("strategy", ["gather", "dense", "auto"])
    def test_batched_rhs_matches_per_slab_loop(self, rng, strategy):
        a = make_vnm(rng, 32, 48, 8, 2, 8)
        batch = rng.normal(size=(4, 48, 6)).astype(np.float32)
        out = SpmmPlan(a, strategy=strategy).execute(batch)
        assert out.shape == (4, 32, 6)
        stacked = np.stack([spmm_loop_reference(a, batch[i]) for i in range(4)])
        assert np.allclose(out, stacked, atol=1e-3, rtol=1e-5)

    def test_batched_rhs_with_bias(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        batch = rng.normal(size=(3, 32, 5)).astype(np.float32)
        bias = rng.normal(size=16).astype(np.float32)
        with_bias = spmm(a, batch, bias=bias)
        without = spmm(a, batch)
        assert np.allclose(with_bias - without, bias[None, :, None], atol=1e-6)

    def test_bad_rhs_shapes_raise(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        with pytest.raises(ValueError):
            spmm(a, np.ones(32))
        with pytest.raises(ValueError):
            spmm(a, np.ones((31, 4)))
        with pytest.raises(ValueError):
            spmm(a, np.ones((2, 31, 4)))

    def test_unknown_strategy_rejected(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        with pytest.raises(ValueError):
            SpmmPlan(a, strategy="warp-specialized")

    def test_nonfinite_b_rows_outside_selection_stay_isolated(self):
        """A non-finite value in a B row no block selects must not leak NaN
        through the densified operand (0 * inf) — the engine must match the
        loop reference, which never touches that row."""
        a_dense = np.zeros((8, 8), dtype=np.float32)
        a_dense[:, 0] = 1.0  # only column 0 selected (plus zero columns)
        a = VNMSparseMatrix.from_dense(a_dense, v=8, n=2, m=8, strict=True)
        b = np.ones((8, 4), dtype=np.float32)
        b[5] = 1e6  # overflows fp16 -> inf, in an unselected row
        ref = spmm_loop_reference(a, b)
        assert np.isfinite(ref).all()
        for strategy in ("auto", "dense", "gather"):
            out = SpmmPlan(a, strategy=strategy).execute(b)
            assert np.array_equal(out, ref), strategy


class TestSpmmPlanCaching:
    def test_plan_is_memoized_per_matrix(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        assert SpmmPlan.for_matrix(a) is SpmmPlan.for_matrix(a)

    def test_derived_views_are_memoized(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        assert a.to_condensed() is a.to_condensed()
        assert a.selected_column_indices() is a.selected_column_indices()
        assert a.absolute_column_indices() is a.absolute_column_indices()
        assert a.packed_metadata() is a.packed_metadata()

    def test_memoized_views_are_read_only(self, rng):
        """The shared cached arrays must reject accidental mutation, which
        would otherwise silently corrupt every later kernel call."""
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        for view in (
            a.to_condensed(),
            a.selected_column_indices(),
            a.absolute_column_indices(),
            a.packed_metadata(),
        ):
            with pytest.raises(ValueError):
                view[...] = 0

    def test_fresh_matrix_gets_fresh_cache(self, rng):
        dense = rng.normal(size=(16, 32)).astype(np.float32)
        a1 = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
        a2 = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
        assert SpmmPlan.for_matrix(a1) is not SpmmPlan.for_matrix(a2)
        assert a1.to_condensed() is not a2.to_condensed()

    def test_plan_preparation_matches_matrix_views(self, rng):
        a = make_vnm(rng, 16, 32, 4, 2, 8)
        plan = SpmmPlan.for_matrix(a)
        assert np.array_equal(plan.gather_indices, a.selected_column_indices())
        assert np.array_equal(plan.metadata, a.packed_metadata())
        assert plan.condensed_k == a.groups_per_row * 4


class TestSputnikVectorized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shape", [(16, 24, 8), (7, 13, 3), (1, 8, 1)])
    def test_matches_loop_reference(self, seed, shape):
        rng = np.random.default_rng(seed)
        rows, cols, c = shape
        dense = rng.normal(size=(rows, cols)) * (rng.random(size=(rows, cols)) < 0.3)
        a = CSRMatrix.from_dense(dense)
        b = rng.normal(size=(cols, c)).astype(np.float32)
        out = sputnik.spmm(a, b)
        ref = sputnik.spmm_loop_reference(a, b)
        assert np.allclose(out, ref, atol=1e-3, rtol=1e-5)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_segmented_fallback_matches_loop_reference(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(12, 20)) * (rng.random(size=(12, 20)) < 0.25)
        a = CSRMatrix.from_dense(dense)
        b = rng.normal(size=(20, 6)).astype(np.float32)
        b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
        data16 = np.asarray(a.data, dtype=np.float16).astype(np.float32)
        out = sputnik._spmm_segmented(a, data16, b16)
        assert np.allclose(out, sputnik.spmm_loop_reference(a, b), atol=1e-3, rtol=1e-5)

    def test_empty_rows_and_empty_matrix(self, rng):
        dense = np.zeros((6, 8), dtype=np.float32)
        dense[2, 3] = 1.5  # rows 0, 1, 3, 4, 5 stay empty
        b = rng.normal(size=(8, 4)).astype(np.float32)
        a = CSRMatrix.from_dense(dense)
        assert np.allclose(sputnik.spmm(a, b), sputnik.spmm_loop_reference(a, b))
        data16 = np.asarray(a.data, dtype=np.float16).astype(np.float32)
        b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
        assert np.allclose(
            sputnik._spmm_segmented(a, data16, b16), sputnik.spmm_loop_reference(a, b)
        )
        empty = CSRMatrix.from_dense(np.zeros((4, 8), dtype=np.float32))
        assert np.array_equal(sputnik.spmm(empty, b), np.zeros((4, 4), dtype=np.float32))


class TestCusparseVectorized:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("bsize", [2, 4, 16])
    def test_slot_batched_bit_matches_loop_reference(self, seed, bsize):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(4 * bsize, 6 * bsize))
        # Knock out ~half of the blocks so rows have ragged block counts.
        mask = rng.random(size=(4, 6)) < 0.5
        dense = dense * np.kron(mask, np.ones((bsize, bsize)))
        a = BlockedEllMatrix.from_dense(dense, b=bsize)
        b = rng.normal(size=(6 * bsize, 5)).astype(np.float32)
        ref = cusparse.spmm_loop_reference(a, b)
        # The stacked formulation replays the loop's GEMMs and accumulation
        # order exactly (padding slots contribute exact zeros).
        assert np.array_equal(cusparse._spmm_slot_batched(a, b), ref)
        # The dispatching entry point agrees whichever formulation it picks.
        assert np.allclose(cusparse.spmm(a, b), ref, atol=1e-3, rtol=1e-5)

    def test_all_padding_rows(self, rng):
        dense = np.zeros((8, 8), dtype=np.float32)
        dense[0, 0] = 2.0
        a = BlockedEllMatrix.from_dense(dense, b=2)
        b = rng.normal(size=(8, 3)).astype(np.float32)
        assert np.array_equal(
            cusparse._spmm_slot_batched(a, b), cusparse.spmm_loop_reference(a, b)
        )

    def test_nonfinite_first_tile_does_not_leak_into_padded_rows(self):
        """Padding slots gather tile 0 as a placeholder; a non-finite value
        there must not produce NaN in rows whose slots are padding."""
        dense = np.zeros((8, 8), dtype=np.float32)
        dense[0, 0] = 1.0  # block row 0 keeps one block; rows 1..3 are all padding
        a = BlockedEllMatrix.from_dense(dense, b=2)
        b = np.ones((8, 3), dtype=np.float32)
        b[0] = 1e6  # overflows fp16 -> inf, inside tile 0
        ref = cusparse.spmm_loop_reference(a, b)
        out = cusparse._spmm_slot_batched(a, b)
        assert np.isfinite(out[2:]).all()
        # Row 1 holds NaN in both paths (the valid block's zero row times
        # the inf tile), hence equal_nan.
        assert np.array_equal(out, ref, equal_nan=True)
