"""Numerical tests for Spatha's SpMM (the V:N:M kernel)."""

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.kernels.spatha import Spatha
from repro.kernels.spatha.spmm import spmm, spmm_dense_baseline, spmm_reference
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask


def make_operands(rng, rows=64, cols=96, c=32, v=16, n=2, m=8):
    dense = rng.normal(size=(rows, cols))
    pruned = apply_mask(dense, vnm_mask(dense, v=v, n=n, m=m)).astype(np.float32)
    a = VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m)
    b = rng.normal(size=(cols, c)).astype(np.float32)
    return a, pruned, b


class TestSpmmNumerics:
    def test_matches_dense_reference(self, rng):
        a, pruned, b = make_operands(rng)
        assert np.allclose(spmm(a, b), spmm_dense_baseline(pruned, b), atol=2e-2, rtol=1e-2)

    def test_matches_decompressed_reference(self, rng):
        a, _, b = make_operands(rng)
        assert np.allclose(spmm(a, b), spmm_reference(a, b), atol=2e-2, rtol=1e-2)

    def test_multiple_vnm_configurations(self, rng):
        for v, n, m in [(16, 2, 4), (16, 1, 8), (32, 2, 16), (16, 2, 10)]:
            cols = 2 * m * 4
            a, pruned, b = make_operands(rng, rows=64, cols=cols, c=16, v=v, n=n, m=m)
            assert np.allclose(spmm(a, b), spmm_dense_baseline(pruned, b), atol=2e-2, rtol=1e-2), (v, n, m)

    def test_bias_added_per_row(self, rng):
        a, _, b = make_operands(rng)
        bias = rng.normal(size=a.shape[0]).astype(np.float32)
        with_bias = spmm(a, b, bias=bias)
        without = spmm(a, b)
        assert np.allclose(with_bias - without, bias[:, None], atol=1e-6)

    def test_bias_shape_validated(self, rng):
        a, _, b = make_operands(rng)
        with pytest.raises(ValueError):
            spmm(a, b, bias=np.ones(3))

    def test_wrong_operand_type(self, rng):
        with pytest.raises(TypeError):
            spmm(rng.normal(size=(4, 8)), rng.normal(size=(8, 2)))

    def test_shape_mismatch(self, rng):
        a, _, _ = make_operands(rng)
        with pytest.raises(ValueError):
            spmm(a, np.ones((5, 5)))

    def test_zero_matrix_gives_zero_output(self, rng):
        a, _, b = make_operands(rng)
        zero = VNMSparseMatrix.from_dense(
            np.zeros(a.shape, dtype=np.float32), v=a.v, n=a.n, m=a.m, strict=True
        )
        assert np.allclose(spmm(zero, b), 0.0)

    def test_identity_like_selection(self):
        """A matrix whose only non-zeros sit in the selected columns must
        reproduce exact row gathers of B."""
        a_dense = np.zeros((16, 16), dtype=np.float32)
        a_dense[0, 3] = 1.0
        a_dense[5, 11] = 2.0
        a = VNMSparseMatrix.from_dense(a_dense, v=16, n=2, m=8, strict=True)
        b = np.arange(16 * 4, dtype=np.float32).reshape(16, 4)
        out = spmm(a, b)
        assert np.allclose(out[0], b[3])
        assert np.allclose(out[5], 2.0 * b[11])


class TestSpathaFacade:
    def test_compress_then_spmm(self, rng):
        spatha = Spatha(autotune=False)
        dense = rng.normal(size=(64, 96))
        a = spatha.compress(dense, v=16, n=2, m=8)
        assert isinstance(a, VNMSparseMatrix)
        b = rng.normal(size=(96, 8)).astype(np.float32)
        out = spatha.spmm(a, b)
        assert out.shape == (64, 8)

    def test_compress_strict_requires_pruned(self, rng):
        spatha = Spatha(autotune=False)
        dense = rng.normal(size=(64, 96)) + 5.0
        with pytest.raises(ValueError):
            spatha.compress(dense, v=16, n=2, m=8, prune=False)

    def test_run_returns_time_and_output(self, rng):
        spatha = Spatha(autotune=False)
        a, pruned, b = make_operands(rng, rows=128, cols=128, c=32, v=32, n=2, m=8)
        res = spatha.run(a, b)
        assert res.output.shape == (128, 32)
        assert res.time_us > 0
        assert np.allclose(res.output, spmm_dense_baseline(pruned, b), atol=2e-2, rtol=1e-2)

    def test_verify_helper(self, rng):
        a, _, b = make_operands(rng)
        assert Spatha.verify(a, b)
