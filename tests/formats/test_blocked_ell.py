"""Tests for the Blocked-ELL format."""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.pruning.block_wise import block_wise_mask
from repro.pruning.masks import apply_mask


@pytest.fixture
def block_pruned(rng):
    w = rng.normal(size=(32, 32))
    return apply_mask(w, block_wise_mask(w, 0.75, block=8)).astype(np.float32)


class TestConstruction:
    def test_roundtrip(self, block_pruned):
        ell = BlockedEllMatrix.from_dense(block_pruned, b=8)
        assert np.array_equal(ell.to_dense(), block_pruned)

    def test_ell_width_is_max_blocks_per_row(self, block_pruned):
        ell = BlockedEllMatrix.from_dense(block_pruned, b=8)
        keep = np.abs(block_pruned).reshape(4, 8, 4, 8).transpose(0, 2, 1, 3).max(axis=(2, 3)) > 0
        assert ell.ell_width == max(1, int(keep.sum(axis=1).max()))

    def test_padding_fraction(self):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[:8, :8] = 1.0  # one block in the first block row, none in the second
        ell = BlockedEllMatrix.from_dense(dense, b=8)
        assert ell.padding_fraction() == pytest.approx(0.5)

    def test_dimensions_must_divide(self):
        with pytest.raises(ValueError):
            BlockedEllMatrix.from_dense(np.zeros((10, 16)), b=8)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            BlockedEllMatrix.from_dense(np.zeros((8, 8)), b=0)

    def test_block_col_range_validation(self, block_pruned):
        ell = BlockedEllMatrix.from_dense(block_pruned, b=8)
        bad = ell.block_cols.copy()
        bad[0, 0] = 100
        with pytest.raises(ValueError):
            BlockedEllMatrix(blocks=ell.blocks, block_cols=bad, b=8, nrows=32, ncols=32)


class TestAccounting:
    def test_nnz_counts_whole_blocks(self):
        dense = np.zeros((8, 8), dtype=np.float32)
        dense[0, 0] = 1.0
        ell = BlockedEllMatrix.from_dense(dense, b=4)
        assert ell.nnz == 16  # the whole 4x4 block is stored

    def test_footprint_counts_padding_slots(self, block_pruned):
        ell = BlockedEllMatrix.from_dense(block_pruned, b=8)
        fp = ell.footprint("fp16")
        assert fp.values_bytes == ell.blocks.size * 2

    def test_empty_matrix(self):
        ell = BlockedEllMatrix.from_dense(np.zeros((8, 8), dtype=np.float32), b=4)
        assert np.array_equal(ell.to_dense(), np.zeros((8, 8)))
