"""Property-based tests (hypothesis) for the compression formats.

These check the fundamental invariants the rest of the system relies on:
compression followed by decompression is the identity on compliant
matrices, metadata packing is a bijection, and every format's footprint
accounting is consistent with its stored structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.metadata import pack_indices, unpack_indices
from repro.formats.nm import NMSparseMatrix, check_nm_pattern
from repro.formats.vnm import VNMSparseMatrix, check_vnm_pattern
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask
from repro.pruning.vector_wise import vector_wise_mask
from repro.pruning.vnm import vnm_mask


def dense_matrices(max_rows=8, max_row_blocks=4, col_groups=st.integers(1, 4)):
    """Strategy producing small dense float matrices with controlled shapes."""
    return st.tuples(st.integers(1, max_rows), col_groups).flatmap(
        lambda dims: hnp.arrays(
            dtype=np.float32,
            shape=(dims[0] * 4, dims[1] * 8),
            elements=st.floats(-10, 10, allow_nan=False, width=32),
        )
    )


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_nm_compression_roundtrip(dense):
    pruned = apply_mask(dense, nm_mask(dense, 2, 4)).astype(np.float32)
    sp = NMSparseMatrix.from_dense(pruned, 2, 4)
    assert np.array_equal(sp.to_dense(), pruned)
    assert check_nm_pattern(sp.to_dense(), 2, 4)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_compression_roundtrip(dense):
    v = 4
    pruned = apply_mask(dense, vnm_mask(dense, v=v, n=2, m=8)).astype(np.float32)
    sp = VNMSparseMatrix.from_dense(pruned, v=v, n=2, m=8)
    assert np.array_equal(sp.to_dense(), pruned)
    assert check_vnm_pattern(sp.to_dense(), v=v, n=2, m=8)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_nonstrict_always_produces_compliant_pattern(dense):
    sp = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
    assert check_vnm_pattern(sp.to_dense(), v=4, n=2, m=8)
    # Never stores more than N per M-group per row.
    assert sp.nnz == dense.shape[0] * dense.shape[1] // 8 * 2


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_csr_roundtrip_arbitrary_sparsity(dense):
    # Zero out a pseudo-random half of the entries.
    mask = (np.arange(dense.size).reshape(dense.shape) * 2654435761 % 97) > 48
    pruned = np.where(mask, dense, 0.0).astype(np.float32)
    csr = CSRMatrix.from_dense(pruned)
    assert np.array_equal(csr.to_dense(), pruned)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_cvse_roundtrip(dense):
    pruned = apply_mask(dense, vector_wise_mask(dense, 0.5, l=4)).astype(np.float32)
    cvse = CVSEMatrix.from_dense(pruned, l=4)
    assert np.array_equal(cvse.to_dense(), pruned)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=0, max_size=200))
def test_metadata_pack_unpack_roundtrip(indices):
    arr = np.asarray(indices, dtype=np.uint8)
    words = pack_indices(arr)
    assert np.array_equal(unpack_indices(words, len(indices)), arr)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_footprint_consistent(dense):
    sp = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
    fp = sp.footprint("fp16")
    assert fp.values_bytes == sp.values.size * 2
    assert fp.metadata_bytes == pytest.approx(sp.values.size * 0.25)
    assert fp.index_bytes == sp.column_loc.size
    assert fp.total_bytes <= sp.dense_bytes("fp16") + fp.index_bytes
