"""Property-based tests (hypothesis) for the compression formats.

These check the fundamental invariants the rest of the system relies on:
compression followed by decompression is the identity on compliant
matrices, metadata packing is a bijection, and every format's footprint
accounting is consistent with its stored structures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.metadata import pack_indices, unpack_indices
from repro.formats.nm import NMSparseMatrix, check_nm_pattern
from repro.formats.vnm import VNMSparseMatrix, check_vnm_pattern
from repro.kernels.spatha import SpmmPlan
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask
from repro.pruning.vector_wise import vector_wise_mask
from repro.pruning.vnm import vnm_mask


def dense_matrices(max_rows=8, max_row_blocks=4, col_groups=st.integers(1, 4)):
    """Strategy producing small dense float matrices with controlled shapes."""
    return st.tuples(st.integers(1, max_rows), col_groups).flatmap(
        lambda dims: hnp.arrays(
            dtype=np.float32,
            shape=(dims[0] * 4, dims[1] * 8),
            elements=st.floats(-10, 10, allow_nan=False, width=32),
        )
    )


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_nm_compression_roundtrip(dense):
    pruned = apply_mask(dense, nm_mask(dense, 2, 4)).astype(np.float32)
    sp = NMSparseMatrix.from_dense(pruned, 2, 4)
    assert np.array_equal(sp.to_dense(), pruned)
    assert check_nm_pattern(sp.to_dense(), 2, 4)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_compression_roundtrip(dense):
    v = 4
    pruned = apply_mask(dense, vnm_mask(dense, v=v, n=2, m=8)).astype(np.float32)
    sp = VNMSparseMatrix.from_dense(pruned, v=v, n=2, m=8)
    assert np.array_equal(sp.to_dense(), pruned)
    assert check_vnm_pattern(sp.to_dense(), v=v, n=2, m=8)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_nonstrict_always_produces_compliant_pattern(dense):
    sp = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
    assert check_vnm_pattern(sp.to_dense(), v=4, n=2, m=8)
    # Never stores more than N per M-group per row.
    assert sp.nnz == dense.shape[0] * dense.shape[1] // 8 * 2


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_csr_roundtrip_arbitrary_sparsity(dense):
    # Zero out a pseudo-random half of the entries.
    mask = (np.arange(dense.size).reshape(dense.shape) * 2654435761 % 97) > 48
    pruned = np.where(mask, dense, 0.0).astype(np.float32)
    csr = CSRMatrix.from_dense(pruned)
    assert np.array_equal(csr.to_dense(), pruned)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_cvse_roundtrip(dense):
    pruned = apply_mask(dense, vector_wise_mask(dense, 0.5, l=4)).astype(np.float32)
    cvse = CVSEMatrix.from_dense(pruned, l=4)
    assert np.array_equal(cvse.to_dense(), pruned)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 3), min_size=0, max_size=200))
def test_metadata_pack_unpack_roundtrip(indices):
    arr = np.asarray(indices, dtype=np.uint8)
    words = pack_indices(arr)
    assert np.array_equal(unpack_indices(words, len(indices)), arr)


# ---------------------------------------------------------------------------
# Randomised V/N/M patterns over ragged shapes
# ---------------------------------------------------------------------------
#
# The fixed-pattern roundtrips above pin V=4, 2:8.  The dispatcher and the
# serving layer exercise arbitrary patterns, so the invariants must hold for
# *every* legal (V, N, M) — including odd vector sizes, N == M groups, and
# ragged (non-square, prime-multiple) shapes.


def vnm_problems(max_row_blocks=5, max_col_groups=4):
    """Strategy: ``(dense, v, n, m)`` with randomized pattern and shape.

    V ranges over odd and power-of-two vector sizes, M over >= 4 group
    widths, N over [1, min(4, m)]; the matrix dimensions are independent
    multiples of V and M so shapes are ragged (e.g. 3 row blocks x 1
    group).
    """
    return (
        st.tuples(
            st.sampled_from([1, 2, 3, 4, 5, 8]),  # v
            st.sampled_from([4, 5, 7, 8, 12, 16]),  # m
            st.integers(1, 4),  # n (clamped to m below)
            st.integers(1, max_row_blocks),
            st.integers(1, max_col_groups),
            st.integers(0, 2**31 - 1),
        )
        .map(lambda t: (t[0], t[1], min(t[2], min(4, t[1])), t[3], t[4], t[5]))
        .map(
            lambda t: (
                np.random.default_rng(t[5])
                .normal(size=(t[0] * t[3], t[1] * t[4]))
                .astype(np.float32),
                t[0],
                t[2],
                t[1],
            )
        )
    )


@settings(max_examples=40, deadline=None)
@given(vnm_problems())
def test_vnm_roundtrip_randomized_patterns(problem):
    dense, v, n, m = problem
    pruned = apply_mask(dense, vnm_mask(dense, v=v, n=n, m=m)).astype(np.float32)
    sp = VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m, strict=True)
    assert np.array_equal(sp.to_dense(), pruned)
    assert check_vnm_pattern(sp.to_dense(), v=v, n=n, m=m)


@settings(max_examples=40, deadline=None)
@given(vnm_problems())
def test_vnm_nonstrict_randomized_patterns_compliant(problem):
    dense, v, n, m = problem
    sp = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
    assert check_vnm_pattern(sp.to_dense(), v=v, n=n, m=m)
    assert sp.nnz == dense.shape[0] * (dense.shape[1] // m) * n


@settings(max_examples=40, deadline=None)
@given(vnm_problems())
def test_condensed_view_consistent_with_dense(problem):
    """The condensed (selected-columns) view must gather exactly the dense
    matrix's entries at the selected column indices — for every pattern."""
    dense, v, n, m = problem
    sp = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
    condensed = sp.to_condensed()
    full = sp.to_dense()
    sel = sp.selected_column_indices()  # (R/V, K/M*4)
    for block in range(sp.row_blocks):
        rows = slice(block * v, (block + 1) * v)
        assert np.array_equal(condensed[rows], full[rows][:, sel[block]])


@settings(max_examples=25, deadline=None)
@given(vnm_problems(max_row_blocks=3, max_col_groups=3), st.integers(1, 7))
def test_spmm_plan_memo_survives_operand_reconstruction(problem, c):
    """Plans memoize on the operand instance: rebuilding the same logical
    operand must produce a fresh, independent plan whose outputs agree with
    the original bit for bit (a stale shared cache would be a serving-layer
    correctness bug)."""
    dense, v, n, m = problem
    a1 = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
    plan1 = SpmmPlan.for_matrix(a1)
    assert SpmmPlan.for_matrix(a1) is plan1  # memoized on the instance
    rng = np.random.default_rng(dense.shape[0] * 1000 + dense.shape[1])
    b = rng.normal(size=(a1.k, c)).astype(np.float32)
    out1 = plan1.execute(b)

    # Re-construct the operand from the same dense payload: new instance,
    # new memo, same numbers.
    a2 = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
    plan2 = SpmmPlan.for_matrix(a2)
    assert plan2 is not plan1
    assert a2._memo is not a1._memo
    assert np.array_equal(plan2.execute(b), out1)
    # The derived views agree too (they are what the plans share logically).
    assert np.array_equal(a2.to_condensed(), a1.to_condensed())
    assert np.array_equal(a2.selected_column_indices(), a1.selected_column_indices())
    assert np.array_equal(a2.packed_metadata(), a1.packed_metadata())
    # And the first plan is unaffected by the second operand's existence.
    assert np.array_equal(plan1.execute(b), out1)


@settings(max_examples=30, deadline=None)
@given(dense_matrices())
def test_vnm_footprint_consistent(dense):
    sp = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
    fp = sp.footprint("fp16")
    assert fp.values_bytes == sp.values.size * 2
    assert fp.metadata_bytes == pytest.approx(sp.values.size * 0.25)
    assert fp.index_bytes == sp.column_loc.size
    assert fp.total_bytes <= sp.dense_bytes("fp16") + fp.index_bytes
