"""Tests for the column-vector sparse encoding (CLASP / vectorSparse substrate)."""

import numpy as np
import pytest

from repro.formats.cvse import CVSEMatrix
from repro.pruning.masks import apply_mask
from repro.pruning.vector_wise import vector_wise_mask


@pytest.fixture
def vw_pruned(rng):
    w = rng.normal(size=(32, 24))
    return apply_mask(w, vector_wise_mask(w, 0.75, l=8)).astype(np.float32)


class TestConstruction:
    def test_roundtrip(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        assert np.array_equal(cvse.to_dense(), vw_pruned)

    def test_vector_shape(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        assert cvse.data.shape[1] == 8
        assert cvse.l == 8

    def test_number_of_vectors_matches_pruning(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        kept_vectors = (np.abs(vw_pruned).reshape(4, 8, 24).max(axis=1) > 0).sum()
        assert cvse.num_vectors == kept_vectors

    def test_stores_intra_vector_zeros(self, rng):
        # A vector with a single non-zero is stored in full (l elements).
        dense = np.zeros((8, 4), dtype=np.float32)
        dense[3, 1] = 2.0
        cvse = CVSEMatrix.from_dense(dense, l=8)
        assert cvse.num_vectors == 1
        assert cvse.nnz == 8

    def test_rows_not_divisible_raises(self):
        with pytest.raises(ValueError):
            CVSEMatrix.from_dense(np.zeros((10, 4)), l=8)

    def test_invalid_vector_length(self):
        with pytest.raises(ValueError):
            CVSEMatrix.from_dense(np.zeros((8, 4)), l=0)

    def test_pointer_validation(self):
        with pytest.raises(ValueError):
            CVSEMatrix(
                data=np.zeros((1, 4)),
                vector_cols=np.array([0]),
                vector_ptr=np.array([0, 2]),  # claims 2 vectors but only 1 stored
                l=4,
                nrows=4,
                ncols_total=4,
            )

    def test_column_range_validation(self):
        with pytest.raises(ValueError):
            CVSEMatrix(
                data=np.zeros((1, 4)),
                vector_cols=np.array([9]),
                vector_ptr=np.array([0, 1]),
                l=4,
                nrows=4,
                ncols_total=4,
            )


class TestStatistics:
    def test_vectors_per_block(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        counts = cvse.vectors_per_block()
        assert counts.sum() == cvse.num_vectors
        assert counts.shape == (4,)

    def test_load_imbalance_at_least_one(self, vw_pruned):
        assert CVSEMatrix.from_dense(vw_pruned, l=8).load_imbalance() >= 1.0

    def test_effective_density(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        assert cvse.effective_density() == pytest.approx(cvse.nnz / vw_pruned.size)

    def test_footprint(self, vw_pruned):
        cvse = CVSEMatrix.from_dense(vw_pruned, l=8)
        fp = cvse.footprint("fp16")
        assert fp.values_bytes == cvse.nnz * 2
        # One 4-byte column index per vector (plus pointers), far fewer than CSR's per-nnz indices.
        assert fp.index_bytes == cvse.num_vectors * 4 + cvse.vector_ptr.size * 4

    def test_empty_matrix(self):
        cvse = CVSEMatrix.from_dense(np.zeros((8, 4), dtype=np.float32), l=4)
        assert cvse.num_vectors == 0
        assert np.array_equal(cvse.to_dense(), np.zeros((8, 4)))
