"""Tests for the CSR format (Sputnik substrate)."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.pruning.magnitude import magnitude_mask
from repro.pruning.masks import apply_mask


@pytest.fixture
def sparse_dense(rng):
    w = rng.normal(size=(16, 24))
    return apply_mask(w, magnitude_mask(w, 0.75)).astype(np.float32)


class TestConstruction:
    def test_roundtrip(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        assert np.array_equal(csr.to_dense(), sparse_dense)

    def test_nnz_matches(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        assert csr.nnz == np.count_nonzero(sparse_dense)

    def test_indices_sorted_within_rows(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        for r in range(csr.shape[0]):
            lo, hi = csr.indptr[r], csr.indptr[r + 1]
            row_cols = csr.indices[lo:hi]
            assert np.all(np.diff(row_cols) > 0)

    def test_tolerance_drops_small_values(self):
        dense = np.array([[1e-9, 1.0], [0.0, 2.0]], dtype=np.float32)
        csr = CSRMatrix.from_dense(dense, tol=1e-6)
        assert csr.nnz == 2

    def test_empty_rows_supported(self):
        dense = np.zeros((3, 4), dtype=np.float32)
        dense[1, 2] = 5.0
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 1
        assert np.array_equal(csr.to_dense(), dense)

    def test_validation_of_indptr(self):
        with pytest.raises(ValueError):
            CSRMatrix(data=np.ones(2), indices=np.array([0, 1]), indptr=np.array([0, 1]), ncols=4)

    def test_validation_of_column_range(self):
        with pytest.raises(ValueError):
            CSRMatrix(data=np.ones(1), indices=np.array([5]), indptr=np.array([0, 1]), ncols=4)

    def test_mismatched_data_indices(self):
        with pytest.raises(ValueError):
            CSRMatrix(data=np.ones(2), indices=np.array([0]), indptr=np.array([0, 2]), ncols=4)


class TestStatistics:
    def test_row_lengths(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        assert np.array_equal(csr.row_lengths(), (sparse_dense != 0).sum(axis=1))

    def test_load_imbalance_of_balanced_matrix(self):
        dense = np.eye(8, dtype=np.float32)
        assert CSRMatrix.from_dense(dense).load_imbalance() == pytest.approx(1.0)

    def test_load_imbalance_of_skewed_matrix(self):
        dense = np.zeros((4, 8), dtype=np.float32)
        dense[0, :] = 1.0  # one full row, three empty
        assert CSRMatrix.from_dense(dense).load_imbalance() == pytest.approx(4.0)

    def test_footprint_includes_indices(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        fp = csr.footprint("fp16")
        assert fp.values_bytes == csr.nnz * 2
        assert fp.index_bytes > 0


class TestRowSlice:
    def test_slice_roundtrip(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        sl = csr.row_slice(4, 12)
        assert sl.shape == (8, sparse_dense.shape[1])
        assert np.array_equal(sl.to_dense(), sparse_dense[4:12])

    def test_slice_out_of_range(self, sparse_dense):
        csr = CSRMatrix.from_dense(sparse_dense)
        with pytest.raises(IndexError):
            csr.row_slice(0, 100)
