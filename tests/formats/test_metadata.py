"""Tests for 2-bit metadata packing/unpacking."""

import numpy as np
import pytest

from repro.formats.metadata import (
    BITS_PER_INDEX,
    INDICES_PER_WORD,
    indices_from_mask_groups,
    metadata_bytes,
    pack_indices,
    unpack_indices,
    validate_indices,
)


class TestValidateIndices:
    def test_accepts_valid_range(self):
        out = validate_indices([0, 1, 2, 3], group_size=4)
        assert out.dtype == np.uint8

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_indices([0, 4], group_size=4)
        with pytest.raises(ValueError):
            validate_indices([-1], group_size=4)

    def test_accepts_integral_floats(self):
        out = validate_indices(np.array([0.0, 3.0]), group_size=4)
        assert list(out) == [0, 3]

    def test_rejects_fractional(self):
        with pytest.raises(TypeError):
            validate_indices(np.array([0.5]), group_size=4)


class TestPackUnpack:
    def test_constants(self):
        assert BITS_PER_INDEX == 2
        assert INDICES_PER_WORD == 16

    def test_roundtrip_exact_word(self):
        idx = np.arange(16) % 4
        words = pack_indices(idx)
        assert words.shape == (1,)
        assert np.array_equal(unpack_indices(words, 16), idx.astype(np.uint8))

    def test_roundtrip_partial_word(self):
        idx = np.array([3, 2, 1, 0, 3])
        words = pack_indices(idx)
        assert words.shape == (1,)
        assert np.array_equal(unpack_indices(words, 5), idx.astype(np.uint8))

    def test_roundtrip_multiple_words(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 4, size=1000)
        words = pack_indices(idx)
        assert words.shape == (-(-1000 // 16),)
        assert np.array_equal(unpack_indices(words, 1000), idx.astype(np.uint8))

    def test_little_endian_packing(self):
        # First index occupies the least-significant bits.
        words = pack_indices([1, 2])
        assert words[0] == 1 | (2 << 2)

    def test_empty(self):
        assert pack_indices([]).size == 0
        assert unpack_indices(np.zeros(0, dtype=np.uint32), 0).size == 0

    def test_unpack_too_many_raises(self):
        with pytest.raises(ValueError):
            unpack_indices(np.zeros(1, dtype=np.uint32), 17)

    def test_unpack_negative_count_raises(self):
        with pytest.raises(ValueError):
            unpack_indices(np.zeros(1, dtype=np.uint32), -1)


class TestMetadataBytes:
    def test_two_bits_per_value(self):
        assert metadata_bytes(16) == 4.0
        assert metadata_bytes(1) == 0.25

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            metadata_bytes(-1)


class TestIndicesFromMaskGroups:
    def test_positions_sorted_ascending(self):
        mask = np.array([[True, False, False, True, False, True, True, False]])
        idx = indices_from_mask_groups(mask, group_size=4, keep=2)
        assert idx.shape == (1, 2, 2)
        assert list(idx[0, 0]) == [0, 3]
        assert list(idx[0, 1]) == [1, 2]

    def test_wrong_keep_count_raises(self):
        mask = np.array([[True, True, True, False]])
        with pytest.raises(ValueError):
            indices_from_mask_groups(mask, group_size=4, keep=2)

    def test_columns_not_divisible_raises(self):
        with pytest.raises(ValueError):
            indices_from_mask_groups(np.ones((1, 6), dtype=bool), group_size=4, keep=4)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            indices_from_mask_groups(np.ones(8, dtype=bool), group_size=4, keep=2)
