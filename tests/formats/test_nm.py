"""Tests for the row-wise N:M format (paper Figure 1)."""

import numpy as np
import pytest

from repro.formats.nm import NMSparseMatrix, check_nm_pattern, nm_violations
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask


class TestPatternChecks:
    def test_compliant_matrix(self, dense_24):
        assert check_nm_pattern(dense_24, 2, 4)
        assert nm_violations(dense_24, 2, 4) == 0

    def test_dense_matrix_violates(self, rng):
        dense = rng.normal(size=(8, 16)) + 10.0  # no zeros
        assert not check_nm_pattern(dense, 2, 4)
        assert nm_violations(dense, 2, 4) == 8 * 4

    def test_wrong_column_multiple(self):
        assert not check_nm_pattern(np.zeros((4, 6)), 2, 4)

    def test_violations_requires_divisible(self):
        with pytest.raises(ValueError):
            nm_violations(np.zeros((4, 6)), 2, 4)


class TestCompression:
    def test_shapes_match_paper(self, nm_matrix, dense_24):
        r, k = dense_24.shape
        assert nm_matrix.values.shape == (r, k // 4 * 2)
        assert nm_matrix.indices.shape == nm_matrix.values.shape
        assert nm_matrix.shape == (r, k)

    def test_roundtrip_exact(self, nm_matrix, dense_24):
        assert np.array_equal(nm_matrix.to_dense(), dense_24)

    def test_strict_rejects_noncompliant(self, rng):
        dense = rng.normal(size=(8, 16)) + 10.0
        with pytest.raises(ValueError):
            NMSparseMatrix.from_dense(dense, 2, 4, strict=True)

    def test_non_strict_prunes(self, rng):
        dense = rng.normal(size=(8, 16)) + 10.0
        sp = NMSparseMatrix.from_dense(dense, 2, 4, strict=False)
        assert check_nm_pattern(sp.to_dense(), 2, 4)
        # the kept values are the two largest magnitudes of each group
        groups = np.abs(dense).reshape(8, 4, 4)
        expected_mass = np.sort(groups, axis=2)[:, :, -2:].sum()
        assert np.abs(sp.to_dense()).sum() == pytest.approx(expected_mass, rel=1e-5)

    def test_other_patterns(self, rng):
        dense = rng.normal(size=(6, 24))
        pruned = apply_mask(dense, nm_mask(dense, n=1, m=8))
        sp = NMSparseMatrix.from_dense(pruned, n=1, m=8)
        assert sp.values.shape == (6, 3)
        assert np.allclose(sp.to_dense(), pruned)

    def test_k_not_divisible_raises(self):
        with pytest.raises(ValueError):
            NMSparseMatrix.from_dense(np.zeros((4, 10)), 2, 4)

    def test_invalid_pattern_raises(self):
        with pytest.raises(ValueError):
            NMSparseMatrix.from_dense(np.zeros((4, 8)), 5, 4)

    def test_groups_with_fewer_nonzeros_padded(self):
        dense = np.zeros((1, 8), dtype=np.float32)
        dense[0, 1] = 3.0  # only one non-zero in the first group, none in the second
        sp = NMSparseMatrix.from_dense(dense, 2, 4)
        assert sp.values.shape == (1, 4)
        assert np.array_equal(sp.to_dense(), dense)


class TestDerivedViews:
    def test_nnz_and_density(self, nm_matrix):
        assert nm_matrix.nnz == nm_matrix.values.size
        assert nm_matrix.density == pytest.approx(0.5)

    def test_footprint_smaller_than_dense(self, nm_matrix):
        fp = nm_matrix.footprint("fp16")
        assert fp.total_bytes < nm_matrix.dense_bytes("fp16")
        assert fp.metadata_bytes == nm_matrix.nnz * 0.25

    def test_packed_metadata_length(self, nm_matrix):
        words = nm_matrix.packed_metadata()
        assert words.size == -(-nm_matrix.nnz // 16)

    def test_column_indices_absolute(self, nm_matrix, dense_24):
        cols = nm_matrix.column_indices()
        assert cols.shape == nm_matrix.values.shape
        # every stored value must match the dense matrix at its column
        for r in range(dense_24.shape[0]):
            for j in range(cols.shape[1]):
                assert dense_24[r, cols[r, j]] == pytest.approx(nm_matrix.values[r, j])

    def test_groups_per_row(self, nm_matrix, dense_24):
        assert nm_matrix.groups_per_row == dense_24.shape[1] // 4

    def test_indices_shape_validation(self, dense_24):
        sp = NMSparseMatrix.from_dense(dense_24, 2, 4)
        with pytest.raises(ValueError):
            NMSparseMatrix(values=sp.values, indices=sp.indices[:, :-1], n=2, m=4, k=sp.k)
