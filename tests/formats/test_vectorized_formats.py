"""Equivalence tests for the vectorized format compressors.

Every rewritten construction/reconstruction path must reproduce its
retained loop reference bit-exactly (the compressors move values, they do
no arithmetic).
"""

import numpy as np
import pytest

from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.cvse import CVSEMatrix
from repro.formats.vnm import VNMSparseMatrix


def sparse_dense(rng, rows, cols, density=0.3):
    return (rng.normal(size=(rows, cols)) * (rng.random(size=(rows, cols)) < density)).astype(
        np.float32
    )


class TestCSRVectorized:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shape", [(16, 24), (7, 13), (1, 5)])
    def test_to_dense_matches_reference(self, seed, shape):
        rng = np.random.default_rng(seed)
        a = CSRMatrix.from_dense(sparse_dense(rng, *shape))
        assert np.array_equal(a.to_dense(), a.to_dense_reference())

    def test_empty_matrix(self):
        a = CSRMatrix.from_dense(np.zeros((4, 6), dtype=np.float32))
        assert np.array_equal(a.to_dense(), a.to_dense_reference())
        assert not a.to_dense().any()


class TestCVSEVectorized:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("l", [2, 4, 8])
    def test_from_dense_matches_reference(self, seed, l):
        rng = np.random.default_rng(seed)
        dense = sparse_dense(rng, 16, 12)
        vec = CVSEMatrix.from_dense(dense, l=l)
        ref = CVSEMatrix.from_dense_reference(dense, l=l)
        assert np.array_equal(vec.data, ref.data)
        assert np.array_equal(vec.vector_cols, ref.vector_cols)
        assert np.array_equal(vec.vector_ptr, ref.vector_ptr)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_to_dense_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        a = CVSEMatrix.from_dense(sparse_dense(rng, 16, 12), l=4)
        assert np.array_equal(a.to_dense(), a.to_dense_reference())

    def test_empty_matrix_roundtrip(self):
        dense = np.zeros((8, 6), dtype=np.float32)
        vec = CVSEMatrix.from_dense(dense, l=4)
        ref = CVSEMatrix.from_dense_reference(dense, l=4)
        assert vec.num_vectors == ref.num_vectors == 0
        assert np.array_equal(vec.to_dense(), dense)


class TestBlockedEllVectorized:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("bsize", [2, 4])
    def test_from_dense_matches_reference(self, seed, bsize):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(4 * bsize, 5 * bsize))
        mask = rng.random(size=(4, 5)) < 0.4
        dense = (dense * np.kron(mask, np.ones((bsize, bsize)))).astype(np.float32)
        vec = BlockedEllMatrix.from_dense(dense, b=bsize)
        ref = BlockedEllMatrix.from_dense_reference(dense, b=bsize)
        assert np.array_equal(vec.blocks, ref.blocks)
        assert np.array_equal(vec.block_cols, ref.block_cols)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_to_dense_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        dense = sparse_dense(rng, 8, 12, density=0.2)
        a = BlockedEllMatrix.from_dense(dense, b=2)
        assert np.array_equal(a.to_dense(), a.to_dense_reference())

    def test_empty_matrix(self):
        a = BlockedEllMatrix.from_dense(np.zeros((4, 4), dtype=np.float32), b=2)
        ref = BlockedEllMatrix.from_dense_reference(np.zeros((4, 4), dtype=np.float32), b=2)
        assert np.array_equal(a.blocks, ref.blocks)
        assert np.array_equal(a.block_cols, ref.block_cols)
        assert not a.to_dense().any()


class TestStorageOrderVectorized:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize(
        "case",
        [
            # (rows, cols, v, n, m, ws_m) — ragged row tiles and ragged
            # 4-value chunks both exercised.
            (64, 64, 16, 2, 8, 32),
            (24, 40, 8, 2, 10, 32),  # odd M
            (8, 50, 4, 1, 10, 3),  # stored width 5: ragged 4-value chunk
            (16, 16, 4, 3, 4, 5),  # ws_m does not divide rows
            (8, 8, 8, 1, 8, 32),  # single tile, single chunk
        ],
    )
    def test_matches_reference(self, seed, case):
        rows, cols, v, n, m, ws_m = case
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(rows, cols)).astype(np.float32)
        a = VNMSparseMatrix.from_dense(dense, v=v, n=n, m=m, strict=False)
        vec = a.storage_order_values(ws_m=ws_m)
        ref = a.storage_order_values_reference(ws_m=ws_m)
        assert np.array_equal(vec, ref)
        # Both must be permutations of the stored values.
        assert np.array_equal(np.sort(vec), np.sort(a.values.ravel()))

    def test_invalid_tile_params_rejected(self, rng):
        dense = rng.normal(size=(8, 8)).astype(np.float32)
        a = VNMSparseMatrix.from_dense(dense, v=4, n=2, m=8, strict=False)
        with pytest.raises(ValueError):
            a.storage_order_values(ws_m=0)
        with pytest.raises(ValueError):
            a.storage_order_values_reference(mma_k=0)
