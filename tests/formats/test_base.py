"""Tests for the shared sparse-format infrastructure."""

import numpy as np
import pytest

from repro.formats.base import (
    FormatFootprint,
    as_float_matrix,
    density_of,
    quantize_fp16,
    sparsity_of,
)
from repro.formats.nm import NMSparseMatrix


class TestAsFloatMatrix:
    def test_converts_to_float32_contiguous(self):
        out = as_float_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float32
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            as_float_matrix(np.zeros(4))
        with pytest.raises(ValueError):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            as_float_matrix(np.zeros((0, 4)))

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            as_float_matrix(np.zeros((2, 2), dtype=complex))

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            as_float_matrix(np.array([["a", "b"], ["c", "d"]]))


class TestQuantizeFp16:
    def test_idempotent(self):
        x = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        once = quantize_fp16(x)
        assert np.array_equal(once, quantize_fp16(once))

    def test_returns_float32(self):
        assert quantize_fp16(np.ones((2, 2))).dtype == np.float32

    def test_rounds_to_half_precision(self):
        # 1 + 2^-12 is not representable in fp16 (10 mantissa bits).
        x = np.array([[1.0 + 2.0**-12]])
        assert quantize_fp16(x)[0, 0] == pytest.approx(1.0)


class TestSparsityDensity:
    def test_sparsity_of_half_zero_matrix(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert sparsity_of(m) == pytest.approx(0.5)
        assert density_of(m) == pytest.approx(0.5)

    def test_tolerance(self):
        m = np.array([[1e-9, 1.0]])
        assert sparsity_of(m, tol=1e-6) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparsity_of(np.zeros((0,)))


class TestFormatFootprint:
    def test_total(self):
        f = FormatFootprint(values_bytes=10, metadata_bytes=2, index_bytes=3)
        assert f.total_bytes == 15

    def test_compression_ratio(self):
        f = FormatFootprint(values_bytes=10, metadata_bytes=0, index_bytes=0)
        assert f.compression_ratio(40) == pytest.approx(4.0)

    def test_zero_footprint_rejected(self):
        with pytest.raises(ValueError):
            FormatFootprint(0, 0, 0).compression_ratio(10)


class TestSparseFormatInterface:
    def test_shared_properties(self, nm_matrix, dense_24):
        assert nm_matrix.rows == dense_24.shape[0]
        assert nm_matrix.cols == dense_24.shape[1]
        assert nm_matrix.density == pytest.approx(0.5)
        assert nm_matrix.sparsity == pytest.approx(0.5)

    def test_compression_ratio_better_than_one(self, nm_matrix):
        assert nm_matrix.compression_ratio("fp16") > 1.0

    def test_allclose_to(self, nm_matrix, dense_24):
        assert nm_matrix.allclose_to(dense_24)
        assert not nm_matrix.allclose_to(dense_24 + 1.0)

    def test_dense_bytes(self, nm_matrix, dense_24):
        assert nm_matrix.dense_bytes("fp16") == dense_24.size * 2
