"""Tests for the V:N:M format (paper Figure 3) — the core contribution."""

import numpy as np
import pytest

from repro.formats.vnm import SELECTED_COLUMNS, VNMSparseMatrix, check_vnm_pattern, validate_vnm_shape
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask


class TestShapeValidation:
    def test_valid_shape_passes(self):
        validate_vnm_shape(64, 128, v=16, n=2, m=8)

    def test_m_must_be_at_least_4(self):
        with pytest.raises(ValueError):
            validate_vnm_shape(64, 128, v=16, n=2, m=2)

    def test_n_at_most_4(self):
        with pytest.raises(ValueError):
            validate_vnm_shape(64, 128, v=16, n=5, m=8)

    def test_rows_divisible_by_v(self):
        with pytest.raises(ValueError):
            validate_vnm_shape(60, 128, v=16, n=2, m=8)

    def test_cols_divisible_by_m(self):
        with pytest.raises(ValueError):
            validate_vnm_shape(64, 130, v=16, n=2, m=8)

    def test_positive_values(self):
        with pytest.raises(ValueError):
            validate_vnm_shape(64, 128, v=0, n=2, m=8)


class TestPatternCheck:
    def test_compliant(self, dense_vnm):
        assert check_vnm_pattern(dense_vnm, v=8, n=2, m=8)

    def test_dense_violates(self, rng):
        dense = rng.normal(size=(16, 32)) + 5.0
        assert not check_vnm_pattern(dense, v=8, n=2, m=8)

    def test_too_many_columns_in_block_violates(self):
        m = np.zeros((8, 8), dtype=np.float32)
        m[0, 0] = m[1, 1] = m[2, 2] = m[3, 3] = m[4, 4] = 1.0  # 5 distinct columns used
        assert not check_vnm_pattern(m, v=8, n=2, m=8)

    def test_wrong_shape_returns_false(self):
        assert not check_vnm_pattern(np.zeros((7, 8)), v=8, n=2, m=8)


class TestCompression:
    def test_structure_shapes_match_figure3(self, vnm_matrix, dense_vnm):
        r, k = dense_vnm.shape
        m = vnm_matrix.m
        assert vnm_matrix.values.shape == (r, k // m * 2)
        assert vnm_matrix.m_indices.shape == (r, k // m * 2)
        assert vnm_matrix.column_loc.shape == (r // vnm_matrix.v, k // m * SELECTED_COLUMNS)

    def test_roundtrip_exact(self, vnm_matrix, dense_vnm):
        assert np.array_equal(vnm_matrix.to_dense(), dense_vnm)

    def test_strict_rejects_noncompliant(self, rng):
        dense = rng.normal(size=(16, 32)) + 5.0
        with pytest.raises(ValueError):
            VNMSparseMatrix.from_dense(dense, v=8, n=2, m=8, strict=True)

    def test_non_strict_prunes_to_pattern(self, rng):
        dense = rng.normal(size=(16, 32)) + 5.0
        sp = VNMSparseMatrix.from_dense(dense, v=8, n=2, m=8, strict=False)
        assert check_vnm_pattern(sp.to_dense(), v=8, n=2, m=8)

    def test_compression_agrees_with_pruner(self, rng):
        """Compressing with strict=False must equal pruning then compressing."""
        dense = rng.normal(size=(32, 64))
        via_compressor = VNMSparseMatrix.from_dense(dense, v=16, n=2, m=16, strict=False).to_dense()
        pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=16))
        assert np.allclose(via_compressor, pruned.astype(np.float32), atol=1e-6)

    def test_various_configurations_roundtrip(self, rng):
        for v, n, m, rows, cols in [(4, 2, 4, 8, 16), (8, 1, 8, 16, 32), (16, 2, 16, 32, 64), (32, 2, 10, 64, 40)]:
            dense = rng.normal(size=(rows, cols))
            pruned = apply_mask(dense, vnm_mask(dense, v=v, n=n, m=m)).astype(np.float32)
            sp = VNMSparseMatrix.from_dense(pruned, v=v, n=n, m=m, strict=True)
            assert np.array_equal(sp.to_dense(), pruned), (v, n, m)

    def test_column_loc_range_validated(self, vnm_matrix):
        bad = vnm_matrix.column_loc.copy()
        bad[0, 0] = vnm_matrix.m  # out of range
        with pytest.raises(ValueError):
            VNMSparseMatrix(
                values=vnm_matrix.values,
                m_indices=vnm_matrix.m_indices,
                column_loc=bad,
                v=vnm_matrix.v,
                n=vnm_matrix.n,
                m=vnm_matrix.m,
                k=vnm_matrix.k,
            )


class TestDerivedViews:
    def test_logical_sparsity(self, vnm_matrix):
        assert vnm_matrix.logical_sparsity == pytest.approx(1 - 2 / 8)

    def test_condensed_shape_and_content(self, vnm_matrix, dense_vnm):
        cond = vnm_matrix.to_condensed()
        r, k = dense_vnm.shape
        assert cond.shape == (r, k // vnm_matrix.m * SELECTED_COLUMNS)
        # Every non-zero of the dense matrix must appear in the condensed view.
        assert np.count_nonzero(cond) == np.count_nonzero(dense_vnm)
        assert np.abs(cond).sum() == pytest.approx(np.abs(dense_vnm).sum(), rel=1e-6)

    def test_absolute_column_indices_consistent(self, vnm_matrix, dense_vnm):
        cols = vnm_matrix.absolute_column_indices()
        vals = vnm_matrix.values
        for r in range(vals.shape[0]):
            for j in range(vals.shape[1]):
                if vals[r, j] != 0:
                    assert dense_vnm[r, cols[r, j]] == pytest.approx(vals[r, j])

    def test_selected_column_indices_within_groups(self, vnm_matrix):
        sel = vnm_matrix.selected_column_indices()
        m = vnm_matrix.m
        groups = vnm_matrix.groups_per_row
        assert sel.shape == (vnm_matrix.row_blocks, groups * SELECTED_COLUMNS)
        for g in range(groups):
            block = sel[:, g * SELECTED_COLUMNS : (g + 1) * SELECTED_COLUMNS]
            assert block.min() >= g * m
            assert block.max() < (g + 1) * m

    def test_footprint_accounts_all_structures(self, vnm_matrix):
        fp = vnm_matrix.footprint("fp16")
        assert fp.values_bytes == vnm_matrix.nnz * 2
        assert fp.metadata_bytes == vnm_matrix.nnz * 0.25
        assert fp.index_bytes == vnm_matrix.column_loc.size
        assert fp.total_bytes < vnm_matrix.dense_bytes("fp16")

    def test_higher_sparsity_compresses_more(self, rng):
        dense = rng.normal(size=(64, 128))
        low = VNMSparseMatrix.from_dense(dense, v=16, n=2, m=8, strict=False)
        high = VNMSparseMatrix.from_dense(dense, v=16, n=2, m=16, strict=False)
        assert high.footprint().total_bytes < low.footprint().total_bytes

    def test_packed_metadata_size(self, vnm_matrix):
        assert vnm_matrix.packed_metadata().size == -(-vnm_matrix.nnz // 16)

    def test_storage_order_is_permutation(self, vnm_matrix):
        ordered = vnm_matrix.storage_order_values(ws_m=8, mma_k=32)
        assert ordered.size == vnm_matrix.values.size
        assert np.allclose(np.sort(ordered), np.sort(vnm_matrix.values.ravel()))

    def test_storage_order_invalid_args(self, vnm_matrix):
        with pytest.raises(ValueError):
            vnm_matrix.storage_order_values(ws_m=0)
