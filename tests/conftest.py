"""Shared fixtures for the test suite.

Every test operates on small, deterministic inputs; the fixtures here
provide the common building blocks (RNG, small dense/pruned matrices,
compressed operands, the simulated GPU) so individual tests stay focused on
the behaviour they check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.nm import NMSparseMatrix
from repro.formats.vnm import VNMSparseMatrix
from repro.hardware.spec import rtx3090
from repro.pruning.masks import apply_mask
from repro.pruning.nm import nm_mask
from repro.pruning.vnm import vnm_mask


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def gpu():
    """The simulated RTX 3090 used by the kernel models."""
    return rtx3090()


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A small dense matrix (32 x 64) with transformer-like statistics."""
    return rng.normal(0.0, 0.02, size=(32, 64)).astype(np.float32)


@pytest.fixture
def dense_24(rng) -> np.ndarray:
    """A 16 x 32 matrix already pruned to the 2:4 pattern."""
    w = rng.normal(size=(16, 32))
    return apply_mask(w, nm_mask(w, n=2, m=4)).astype(np.float32)


@pytest.fixture
def nm_matrix(dense_24) -> NMSparseMatrix:
    """The 2:4 matrix compressed into the N:M format."""
    return NMSparseMatrix.from_dense(dense_24, n=2, m=4)


@pytest.fixture
def dense_vnm(rng) -> np.ndarray:
    """A 32 x 64 matrix pruned to the 8:2:8 (V=8, 2:8) pattern."""
    w = rng.normal(size=(32, 64))
    return apply_mask(w, vnm_mask(w, v=8, n=2, m=8)).astype(np.float32)


@pytest.fixture
def vnm_matrix(dense_vnm) -> VNMSparseMatrix:
    """The V:N:M-pruned matrix compressed into the V:N:M format."""
    return VNMSparseMatrix.from_dense(dense_vnm, v=8, n=2, m=8)


@pytest.fixture
def activations(rng) -> np.ndarray:
    """A dense RHS operand (64 x 24) for SpMM tests."""
    return rng.normal(size=(64, 24)).astype(np.float32)
