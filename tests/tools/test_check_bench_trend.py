"""The bench-trend gate: serving floors and baseline regression checks.

The tool CI's perf job runs (``tools/check_bench_trend.py``) is imported
and unit-tested here so the gate's semantics are themselves tier-1-tested:
a ``serving.*`` entry below the floor fails, a >tolerance drop against the
baseline fails, and the committed ``BENCH_engine.json`` must hold its own
gates (the record the docs quote cannot document a regression).

NaN is the "no data" sentinel (a latency percentile over zero completed
requests — see :class:`repro.serving.simulate.ServingSimReport`): both
sides of that contract are pinned here — empty-sample percentiles return
NaN rather than a fake 0.0, and the gate *skips* NaN entries with a
warning instead of letting ``nan < floor`` (always False) wave them
through.
"""

import json
import math
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_bench_trend import check_trend, main  # noqa: E402


def entry(op, shape, speedup):
    return {"op": op, "shape": shape, "speedup": speedup}


class TestServingFloor:
    def test_serving_entry_below_floor_fails(self):
        failures = check_trend([entry("serving.encoder_continuous", "s", 0.92)])
        assert len(failures) == 1
        assert "below" in failures[0] and "0.92" in failures[0]

    def test_serving_entry_at_floor_passes(self):
        assert check_trend([entry("serving.encoder_continuous", "s", 1.0)]) == []

    def test_floor_only_applies_to_serving_ops(self):
        # A sub-1.0 kernel entry is suspicious but not this gate's business.
        assert check_trend([entry("spatha.spmm", "s", 0.5)]) == []

    def test_custom_floor(self):
        record = [entry("serving.encoder", "s", 1.5)]
        assert check_trend(record, min_serving_speedup=2.0) != []
        assert check_trend(record, min_serving_speedup=1.5) == []

    def test_missing_speedup_field_fails(self):
        assert check_trend([{"op": "serving.x", "shape": "s"}]) != []

    def test_faulted_entry_is_exempt_from_the_floor(self):
        # The faulted bench compares fault-free vs fault-injected serving of
        # the same schedule: sub-1.0 by construction (failovers cost retries).
        assert check_trend([entry("serving.encoder_faulted", "s", 0.6)]) == []

    def test_faulted_entry_still_gated_on_trend(self):
        failures = check_trend(
            [entry("serving.encoder_faulted", "s", 0.4)],
            baseline=[entry("serving.encoder_faulted", "s", 0.9)],
        )
        assert len(failures) == 1
        assert "regressed" in failures[0]


class TestBaselineTrend:
    def test_regression_beyond_tolerance_fails(self):
        failures = check_trend(
            [entry("spatha.spmm", "big", 1.7)],
            baseline=[entry("spatha.spmm", "big", 2.0)],
        )
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_regression_within_tolerance_passes(self):
        assert (
            check_trend(
                [entry("spatha.spmm", "big", 1.85)],
                baseline=[entry("spatha.spmm", "big", 2.0)],
            )
            == []
        )

    def test_entries_matched_by_op_and_shape(self):
        # Same op at a different shape is a different measurement — no match,
        # no fabricated comparison (quick-mode records vs full baselines).
        assert (
            check_trend(
                [entry("spatha.spmm", "small", 1.0)],
                baseline=[entry("spatha.spmm", "big", 10.0)],
            )
            == []
        )

    def test_improvements_never_fail(self):
        assert (
            check_trend(
                [entry("serving.encoder", "s", 3.0)],
                baseline=[entry("serving.encoder", "s", 1.2)],
            )
            == []
        )

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            check_trend([], regression_tolerance=1.0)


class TestNaNIsNoData:
    def test_nan_serving_entry_skips_floor_with_warning(self):
        """``nan < floor`` is False, so without the explicit skip a NaN
        serving entry would silently *pass* the floor.  It must be skipped
        and warned about instead — and never counted as a failure."""
        warnings = []
        failures = check_trend(
            [entry("serving.decoder_continuous", "s", float("nan"))],
            warnings=warnings,
        )
        assert failures == []
        assert len(warnings) == 1
        assert "NaN" in warnings[0] and "skipped" in warnings[0]

    def test_nan_current_entry_skips_trend_too(self):
        warnings = []
        failures = check_trend(
            [entry("serving.x", "s", float("nan"))],
            baseline=[entry("serving.x", "s", 2.0)],
            warnings=warnings,
        )
        assert failures == []
        assert len(warnings) == 1  # one warning covers floor + trend

    def test_nan_baseline_skips_trend_with_warning(self):
        """A NaN *baseline* would make ``floor = nan * 0.9`` and every
        comparison against it False — a silently-passing trend check."""
        warnings = []
        failures = check_trend(
            [entry("serving.x", "s", 1.5)],
            baseline=[entry("serving.x", "s", float("nan"))],
            warnings=warnings,
        )
        assert failures == []
        assert len(warnings) == 1
        assert "baseline" in warnings[0] and "NaN" in warnings[0]

    def test_warnings_list_is_optional(self):
        assert check_trend([entry("serving.x", "s", float("nan"))]) == []

    def test_real_failures_still_fail_alongside_nan_entries(self):
        warnings = []
        failures = check_trend(
            [
                entry("serving.good", "s", 1.2),
                entry("serving.empty", "s", float("nan")),
                entry("serving.bad", "s", 0.5),
            ],
            warnings=warnings,
        )
        assert len(failures) == 1 and "serving.bad" in failures[0]
        assert len(warnings) == 1 and "serving.empty" in warnings[0]

    def test_cli_warns_but_exits_zero_on_nan(self, tmp_path, capsys):
        record = tmp_path / "nan.json"
        record.write_text(
            json.dumps({"benchmarks": [entry("serving.x", "s", None)]})
            .replace("null", "NaN")
        )
        assert main([str(record)]) == 0
        out = capsys.readouterr().out
        assert "WARN" in out and "NaN" in out

    def test_empty_sample_percentiles_are_nan_not_zero(self):
        """The producer side of the sentinel: a report with zero completed
        requests must report NaN percentiles (``0.0`` used to masquerade
        as an impossibly perfect latency)."""
        from repro.serving.simulate import ChaosSimReport, ServingSimReport

        report = ServingSimReport(
            window_us=100.0,
            num_requests=0,
            num_batches=0,
            makespan_us=0.0,
            latencies_us={},
        )
        assert math.isnan(report.p95_latency_us)
        assert math.isnan(report.p99_latency_us)
        assert math.isnan(report.p999_latency_us)
        chaos = ChaosSimReport(
            seed=0, num_requests=0, makespan_us=0.0, outcomes={}, latencies_us={}
        )
        assert math.isnan(chaos.p99_latency_us)

    def test_nonempty_percentiles_unchanged(self):
        from repro.serving.simulate import ServingSimReport

        report = ServingSimReport(
            window_us=0.0,
            num_requests=4,
            num_batches=4,
            makespan_us=100.0,
            latencies_us={f"r{i}": float(i + 1) for i in range(4)},
        )
        assert report.p99_latency_us == pytest.approx(3.97)


class TestRecordShapes:
    def test_accepts_full_record_dict(self):
        record = {"benchmarks": [entry("serving.encoder", "s", 1.2)]}
        assert check_trend(record, baseline=record) == []

    def test_rejects_malformed_record(self):
        with pytest.raises(ValueError):
            check_trend({"nope": True})

    def test_cli_round_trip(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"benchmarks": [entry("serving.x", "s", 1.1)]}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"benchmarks": [entry("serving.x", "s", 0.5)]}))
        assert main([str(good), "--baseline", str(good)]) == 0
        assert main([str(bad)]) == 1


class TestCommittedRecord:
    def test_committed_bench_holds_its_own_gates(self):
        """The record the README/docs quote must pass the gate it documents."""
        record = json.loads((REPO_ROOT / "BENCH_engine.json").read_text())
        assert check_trend(record, baseline=record) == []
