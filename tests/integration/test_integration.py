"""Tests for the STen-style integration layer (paper Listing 1)."""

import numpy as np
import pytest

from repro.formats.vnm import check_vnm_pattern
from repro.integration.linear import SpmmLinear, sparsify_encoder
from repro.integration.sparsifier import VNMSparsifier
from repro.integration.sten import (
    SparseTensorWrapper,
    find_sparsifier_implementation,
    register_sparsifier_implementation,
    sparsify,
)
from repro.integration.vnm_tensor import VNMTensor
from repro.kernels.spatha import Spatha
from repro.models.config import tiny_config
from repro.models.layers import DenseLinear, SparseLinear, init_dense_linear
from repro.models.transformer import TransformerEncoder


class TestStenRegistry:
    def test_vnm_implementation_registered_on_import(self):
        fn = find_sparsifier_implementation(VNMSparsifier, np.ndarray, VNMTensor)
        assert callable(fn)

    def test_sparsify_dispatch(self, rng):
        wrapper = sparsify(VNMSparsifier(n=2, m=8, v=16), rng.normal(size=(32, 64)), VNMTensor)
        assert isinstance(wrapper, SparseTensorWrapper)
        assert isinstance(wrapper.wrapped_tensor, VNMTensor)
        assert wrapper.shape == (32, 64)

    def test_missing_implementation(self):
        class OtherSparsifier:
            pass

        with pytest.raises(KeyError):
            find_sparsifier_implementation(OtherSparsifier, np.ndarray, VNMTensor)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_sparsifier_implementation(sparsifier=VNMSparsifier, inp=np.ndarray, out=VNMTensor)
            def duplicate(sparsifier, tensor, grad_fmt=None):  # pragma: no cover
                return None

    def test_wrapper_to_dense(self, rng):
        dense = rng.normal(size=(32, 64))
        wrapper = sparsify(VNMSparsifier(n=2, m=8, v=16), dense, VNMTensor)
        recon = wrapper.to_dense()
        assert recon.shape == dense.shape
        # The reconstruction is the pruned weight: a subset of the original.
        nz = recon != 0
        assert np.allclose(recon[nz], dense.astype(np.float32)[nz], atol=1e-5)


class TestVNMSparsifier:
    def test_magnitude_sparsify(self, rng):
        vnm = VNMSparsifier(n=2, m=8, v=16).sparsify(rng.normal(size=(32, 64)))
        assert isinstance(vnm, VNMTensor)
        assert vnm.sparsity == pytest.approx(0.75)
        assert check_vnm_pattern(vnm.matrix.to_dense(), v=16, n=2, m=8)

    def test_padding_for_awkward_shapes(self, rng):
        vnm = VNMSparsifier(n=2, m=8, v=16).sparsify(rng.normal(size=(30, 60)))
        assert vnm.shape == (30, 60)
        assert vnm.padded_shape == (32, 64)
        assert vnm.to_dense().shape == (30, 60)

    def test_second_order_method(self, rng):
        sparsifier = VNMSparsifier(n=2, m=8, v=16, method="second_order")
        w = rng.normal(size=(16, 32))
        vnm = sparsifier.sparsify(w)
        assert vnm.sparsity == pytest.approx(0.75)

    def test_listing1_alias(self, rng):
        sparsifier = VNMSparsifier(n=2, m=8, v=16)
        assert isinstance(sparsifier.vnm_sparsifier(rng.normal(size=(16, 32))), VNMTensor)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            VNMSparsifier(n=0, m=8, v=16)
        with pytest.raises(ValueError):
            VNMSparsifier(n=5, m=8, v=16)
        with pytest.raises(ValueError):
            VNMSparsifier(n=2, m=8, v=16, method="random")

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            VNMSparsifier(n=2, m=8, v=16).sparsify(np.zeros(16))


class TestVNMTensor:
    def test_listing1_attribute_names(self, rng):
        vnm = VNMSparsifier(n=2, m=8, v=16).sparsify(rng.normal(size=(32, 64)))
        assert vnm.values.shape == (32, 64 // 8 * 2)
        assert vnm.metadata.shape == vnm.values.shape
        assert vnm.columns.shape == (32 // 16, 64 // 8 * 4)
        assert (vnm.v, vnm.n, vnm.m) == (16, 2, 8)

    def test_density(self, rng):
        vnm = VNMSparsifier(n=2, m=8, v=16).sparsify(rng.normal(size=(32, 64)))
        assert vnm.density() == pytest.approx(0.25, abs=0.01)


class TestSpmmLinear:
    def test_forward_matches_sparse_dense_layer(self, rng):
        original = init_dense_linear(32, 64, seed=3)
        sparsifier = VNMSparsifier(n=2, m=8, v=16)
        module = SpmmLinear.from_dense(original, sparsifier, spatha=Spatha(autotune=False))
        x = rng.normal(size=(5, 64)).astype(np.float32)
        expected = DenseLinear(weight=module.weight.to_dense(), bias=original.bias).forward(x)
        assert np.allclose(module.forward(x), expected, atol=5e-2, rtol=1e-2)

    def test_forward_with_padded_weight(self, rng):
        original = init_dense_linear(30, 60, seed=3)
        module = SpmmLinear.from_dense(original, VNMSparsifier(n=2, m=8, v=16), spatha=Spatha(autotune=False))
        x = rng.normal(size=(4, 60)).astype(np.float32)
        out = module.forward(x)
        assert out.shape == (4, 30)
        expected = DenseLinear(weight=module.weight.to_dense(), bias=original.bias).forward(x)
        assert np.allclose(out, expected, atol=5e-2, rtol=1e-2)

    def test_input_dim_validated(self, rng):
        module = SpmmLinear.from_dense(init_dense_linear(32, 64), VNMSparsifier(n=2, m=8, v=16))
        with pytest.raises(ValueError):
            module.forward(rng.normal(size=(4, 63)))

    def test_to_sparse_linear(self):
        module = SpmmLinear.from_dense(init_dense_linear(32, 64), VNMSparsifier(n=2, m=8, v=16))
        assert isinstance(module.to_sparse_linear(), SparseLinear)


class TestSparsifyEncoder:
    @pytest.fixture
    def encoder(self):
        cfg = tiny_config(hidden_size=64, num_layers=2, num_heads=4, intermediate_size=128)
        return TransformerEncoder.init(cfg, seed=0)

    def test_sparsify_all_weights(self, encoder, rng):
        replaced = sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        assert len(replaced) == 12
        assert encoder.count_sparse_layers() == 12
        x = rng.normal(size=(1, 8, 64)).astype(np.float32)
        assert np.isfinite(encoder.forward(x)).all()

    def test_sparsify_with_filter(self, encoder):
        replaced = sparsify_encoder(
            encoder, VNMSparsifier(n=2, m=8, v=16), weight_filter=lambda name: "attention." in name
        )
        assert len(replaced) == 8
        assert encoder.count_sparse_layers() == 8

    def test_sparsify_named_weights(self, encoder):
        names = ["encoder.layer.0.ffn.output"]
        replaced = sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16), weight_names=names)
        assert replaced == names

    def test_unknown_weight_name_raises(self, encoder):
        with pytest.raises(KeyError):
            sparsify_encoder(
                encoder, VNMSparsifier(n=2, m=8, v=16), weight_names=["encoder.layer.0.made.up"]
            )

    def test_filter_and_names_mutually_exclusive(self, encoder):
        with pytest.raises(ValueError):
            sparsify_encoder(
                encoder,
                VNMSparsifier(n=2, m=8, v=16),
                weight_filter=lambda n: True,
                weight_names=["encoder.layer.0.ffn.output"],
            )

    def test_accuracy_of_sparsified_model_degrades_gracefully(self, encoder, rng):
        """Sparsification changes activations but keeps them in a sane range."""
        x = rng.normal(size=(1, 8, 64)).astype(np.float32)
        dense_out = encoder.forward(x)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        sparse_out = encoder.forward(x)
        rel = np.abs(dense_out - sparse_out).mean() / np.abs(dense_out).mean()
        assert rel < 0.5
