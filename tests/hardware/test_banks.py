"""Tests for the shared-memory bank-conflict simulator (paper Figure 8)."""

import numpy as np
import pytest

from repro.hardware.banks import (
    BANK_WIDTH_BYTES,
    NUM_BANKS,
    ConflictReport,
    analyse_address_matrix,
    bank_of,
    conflict_degree_for_layout,
    row_major_store_addresses,
    simulate_access,
    spatha_padded_store_addresses,
)


class TestBankOf:
    def test_wraps_over_32_banks(self):
        assert bank_of(0) == 0
        assert bank_of(4) == 1
        assert bank_of(NUM_BANKS * BANK_WIDTH_BYTES) == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            bank_of(-4)


class TestSimulateAccess:
    def test_conflict_free_consecutive_words(self):
        # 32 threads accessing 32 consecutive 4-byte words: one word per bank.
        report = simulate_access([4 * t for t in range(32)], access_bytes=4)
        assert report.conflict_free
        assert report.conflict_factor == pytest.approx(1.0)

    def test_same_address_broadcasts(self):
        report = simulate_access([0] * 32, access_bytes=4)
        assert report.conflict_free

    def test_stride_32_words_serialises(self):
        # Stride of 32 words means every thread hits bank 0 at distinct addresses.
        report = simulate_access([t * NUM_BANKS * 4 for t in range(32)], access_bytes=4)
        assert report.worst_degree == 32
        assert not report.conflict_free

    def test_128bit_access_runs_quarter_warps(self):
        report = simulate_access([16 * t for t in range(32)], access_bytes=16)
        assert report.phases == 4  # quarter-warp per phase
        assert report.conflict_free

    def test_empty_access(self):
        report = simulate_access([], access_bytes=4)
        assert report.phases == 0
        assert report.conflict_factor == 1.0

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            simulate_access(list(range(33)))

    def test_bad_access_size_rejected(self):
        with pytest.raises(ValueError):
            simulate_access([0], access_bytes=3)


class TestLayouts:
    def test_spatha_padded_layout_is_conflict_free(self):
        addrs = spatha_padded_store_addresses(range(32), bsc=64)
        report = simulate_access(addrs, access_bytes=16)
        assert report.conflict_free

    def test_naive_strided_layout_conflicts(self):
        # 8 fp32 accumulators per thread in a 64-wide row: stride 32 bytes.
        addrs = row_major_store_addresses(range(32), values_per_thread=8, row_width_elems=64)
        report = simulate_access(addrs, access_bytes=4)
        assert not report.conflict_free
        assert report.worst_degree >= 4

    def test_padding_reduces_conflicts(self):
        no_pad = row_major_store_addresses(range(32), values_per_thread=8, row_width_elems=64, padding_elems=0)
        padded = row_major_store_addresses(range(32), values_per_thread=8, row_width_elems=64, padding_elems=1)
        assert (
            simulate_access(padded, access_bytes=4).conflict_factor
            <= simulate_access(no_pad, access_bytes=4).conflict_factor
        )

    def test_conflict_degree_for_layout_names(self):
        spatha = conflict_degree_for_layout("spatha_padded", access_bits=128, bsc=64)
        naive = conflict_degree_for_layout("naive_row_major", access_bits=32, bsc=64)
        assert spatha == pytest.approx(1.0)
        assert naive > spatha

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            conflict_degree_for_layout("mystery")

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            spatha_padded_store_addresses(range(4), bsc=0)
        with pytest.raises(ValueError):
            row_major_store_addresses(range(4), values_per_thread=0, row_width_elems=8)


class TestAnalyseAddressMatrix:
    def test_aggregates_over_iterations(self):
        good = np.array([[4 * t for t in range(32)]] * 3)
        report = analyse_address_matrix(good, access_bytes=4)
        assert isinstance(report, ConflictReport)
        assert report.phases == 3
        assert report.conflict_free

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            analyse_address_matrix(np.zeros(4), access_bytes=4)
