"""Tests for the tensor-core ISA table (paper Table 1)."""

import pytest

from repro.hardware.isa import (
    SPARSE_MMA_SHAPES,
    MmaShape,
    default_sparse_shape,
    find_shape,
    instruction_cost,
    native_nm,
    sparse_mma_shapes,
)


class TestTable1Contents:
    """The table must match the paper's Table 1 exactly."""

    def test_fp16_shapes(self):
        ks = sorted(s.k for s in sparse_mma_shapes("fp16"))
        assert ks == [16, 32]

    def test_fp32_shapes(self):
        ks = sorted(s.k for s in sparse_mma_shapes("fp32"))
        assert ks == [8, 16]

    def test_uint8_shapes(self):
        ks = sorted(s.k for s in sparse_mma_shapes("uint8"))
        assert ks == [32, 64]

    def test_uint4_shapes(self):
        ks = sorted(s.k for s in sparse_mma_shapes("uint4"))
        assert ks == [64, 128]

    def test_m_and_n_fixed_to_16_and_8(self):
        for shapes in SPARSE_MMA_SHAPES.values():
            for s in shapes:
                assert s.m == 16 and s.n == 8

    def test_native_patterns(self):
        assert native_nm("fp16") == (2, 4)
        assert native_nm("fp32") == (1, 2)
        assert native_nm("uint8") == (2, 4)
        assert native_nm("uint4") == (2, 4)

    def test_native_pattern_unknown_precision(self):
        with pytest.raises(KeyError):
            native_nm("fp64")

    def test_unknown_precision_raises(self):
        with pytest.raises(KeyError):
            sparse_mma_shapes("bf32")


class TestMmaShape:
    def test_name_mnemonic(self):
        assert MmaShape(16, 8, 32, "fp16", sparse=True).name == "m16n8k32"

    def test_flops(self):
        s = MmaShape(16, 8, 32, "fp16", sparse=True)
        assert s.flops == 2 * 16 * 8 * 32

    def test_sparse_lhs_is_half(self):
        sparse = MmaShape(16, 8, 32, "fp16", sparse=True)
        dense = MmaShape(16, 8, 32, "fp16", sparse=False)
        assert sparse.lhs_elements == dense.lhs_elements // 2

    def test_metadata_bits(self):
        sparse = MmaShape(16, 8, 32, "fp16", sparse=True)
        assert sparse.metadata_bits == 2 * sparse.lhs_elements
        assert MmaShape(16, 8, 16, "fp16", sparse=False).metadata_bits == 0

    def test_rhs_and_acc_sizes(self):
        s = MmaShape(16, 8, 32, "fp16", sparse=True)
        assert s.rhs_elements == 32 * 8
        assert s.acc_elements == 16 * 8


class TestLookups:
    def test_default_sparse_shape_is_k32(self):
        assert default_sparse_shape("fp16").name == "m16n8k32"

    def test_find_shape(self):
        s = find_shape("m16n8k32", "fp16", sparse=True)
        assert s.k == 32 and s.sparse

    def test_find_shape_dense(self):
        s = find_shape("m16n8k16", "fp16", sparse=False)
        assert not s.sparse

    def test_find_shape_missing(self):
        with pytest.raises(KeyError):
            find_shape("m16n8k64", "fp16", sparse=True)


class TestInstructionCost:
    def test_sparse_instruction_same_issue_cost_as_half_k_dense(self):
        sparse = instruction_cost(find_shape("m16n8k32", "fp16", sparse=True))
        dense = instruction_cost(find_shape("m16n8k16", "fp16", sparse=False))
        assert sparse.issue_cycles == pytest.approx(dense.issue_cycles)

    def test_sparse_doubles_flops_per_cycle(self):
        sparse = instruction_cost(find_shape("m16n8k32", "fp16", sparse=True))
        dense = instruction_cost(find_shape("m16n8k16", "fp16", sparse=False))
        assert sparse.flops_per_cycle == pytest.approx(2 * dense.flops_per_cycle)

    def test_cost_positive(self):
        for shapes in SPARSE_MMA_SHAPES.values():
            for s in shapes:
                assert instruction_cost(s).issue_cycles >= 1.0
