"""Tests for the GPU hardware descriptions."""

import dataclasses

import pytest

from repro.hardware.spec import GPUSpec, MemorySpec, a100_sxm, get_gpu, rtx3090


class TestPresets:
    def test_rtx3090_identity(self):
        gpu = rtx3090()
        assert "3090" in gpu.name
        assert gpu.num_sms == 82

    def test_rtx3090_sparse_rate_is_double_dense(self):
        gpu = rtx3090()
        assert gpu.sparse_fp16_tc_tflops == pytest.approx(2 * gpu.dense_fp16_tc_tflops)

    def test_a100_sparse_rate_is_double_dense(self):
        gpu = a100_sxm()
        assert gpu.sparse_fp16_tc_tflops == pytest.approx(2 * gpu.dense_fp16_tc_tflops)

    def test_a100_has_more_bandwidth_than_3090(self):
        assert a100_sxm().gmem.bandwidth_gbps > rtx3090().gmem.bandwidth_gbps

    def test_get_gpu_default(self):
        assert get_gpu().name == rtx3090().name

    def test_get_gpu_case_insensitive(self):
        assert get_gpu("RTX3090").num_sms == 82

    def test_get_gpu_unknown_raises(self):
        with pytest.raises(KeyError):
            get_gpu("h100")


class TestDerivedQuantities:
    def test_clock_conversion_roundtrip(self):
        gpu = rtx3090()
        cycles = 1_000_000.0
        assert gpu.seconds_to_cycles(gpu.cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_flops_per_cycle_consistency(self):
        gpu = rtx3090()
        assert gpu.dense_fp16_flops_per_cycle == pytest.approx(
            gpu.dense_fp16_tc_tflops * 1e12 / gpu.sm_clock_hz
        )
        assert gpu.sparse_fp16_flops_per_cycle == pytest.approx(2 * gpu.dense_fp16_flops_per_cycle)

    def test_gmem_bytes_per_cycle_positive(self):
        gpu = rtx3090()
        assert gpu.gmem_bytes_per_cycle > 0
        assert gpu.l2_bytes_per_cycle > gpu.gmem_bytes_per_cycle

    def test_smem_per_sm_width(self):
        gpu = rtx3090()
        assert gpu.smem_bytes_per_cycle_per_sm == gpu.smem_banks * gpu.smem_bank_width

    def test_with_overrides_returns_new_spec(self):
        gpu = rtx3090()
        modified = gpu.with_overrides(num_sms=100)
        assert modified.num_sms == 100
        assert gpu.num_sms == 82
        assert isinstance(modified, GPUSpec)

    def test_spec_is_frozen(self):
        gpu = rtx3090()
        with pytest.raises(dataclasses.FrozenInstanceError):
            gpu.num_sms = 1  # type: ignore[misc]


class TestMemorySpec:
    def test_memory_spec_fields(self):
        mem = MemorySpec(bandwidth_gbps=900.0, latency_cycles=400.0, capacity_bytes=1024)
        assert mem.bandwidth_gbps == 900.0
        assert mem.capacity_bytes == 1024

    def test_presets_have_sane_hierarchy(self):
        gpu = rtx3090()
        # Bandwidth rises as we move up the hierarchy; capacity shrinks.
        assert gpu.gmem.bandwidth_gbps < gpu.l2.bandwidth_gbps < gpu.smem.bandwidth_gbps
        assert gpu.gmem.capacity_bytes > gpu.l2.capacity_bytes
