"""Tests for the memory traffic / transfer-time model."""

import pytest

from repro.hardware.memory import (
    DTYPE_BYTES,
    TrafficRecord,
    TransactionModel,
    dtype_bytes,
    gmem_cycles,
    l2_cycles,
    matrix_bytes,
    smem_cycles,
    transfer_cycles,
)
from repro.hardware.spec import rtx3090


class TestDtypeBytes:
    def test_known_precisions(self):
        assert dtype_bytes("fp16") == 2.0
        assert dtype_bytes("fp32") == 4.0
        assert dtype_bytes("uint4") == 0.5

    def test_case_insensitive(self):
        assert dtype_bytes("FP16") == 2.0

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            dtype_bytes("fp8e4m3")

    def test_table_complete(self):
        assert set(DTYPE_BYTES) >= {"fp16", "fp32", "uint8", "uint4"}


class TestTrafficRecord:
    def test_defaults_zero(self):
        t = TrafficRecord()
        assert t.gmem_total_bytes == 0
        assert t.smem_total_bytes == 0

    def test_merge_adds_componentwise(self):
        a = TrafficRecord(gmem_read_bytes=10, smem_write_bytes=5)
        b = TrafficRecord(gmem_read_bytes=3, gmem_write_bytes=7)
        merged = a.merge(b)
        assert merged.gmem_read_bytes == 13
        assert merged.gmem_write_bytes == 7
        assert merged.smem_write_bytes == 5
        # merge does not mutate the originals
        assert a.gmem_read_bytes == 10

    def test_totals(self):
        t = TrafficRecord(gmem_read_bytes=10, gmem_write_bytes=4, smem_read_bytes=6, smem_write_bytes=2)
        assert t.gmem_total_bytes == 14
        assert t.smem_total_bytes == 8


class TestTransactionModel:
    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            TransactionModel(access_bits=48)

    def test_wider_access_fewer_instructions(self):
        assert TransactionModel(128).instructions_per_warp_line < TransactionModel(32).instructions_per_warp_line

    def test_gmem_efficiency_ordering(self):
        assert TransactionModel(128).gmem_efficiency >= TransactionModel(32).gmem_efficiency
        assert TransactionModel(128, coalesced=False).gmem_efficiency < TransactionModel(128).gmem_efficiency

    def test_smem_efficiency_ordering(self):
        assert TransactionModel(128).smem_efficiency > TransactionModel(64).smem_efficiency > TransactionModel(32).smem_efficiency

    def test_bytes_per_access(self):
        assert TransactionModel(128).bytes_per_access == 16.0


class TestTransferCycles:
    def test_scales_linearly_with_bytes(self, gpu):
        t1 = transfer_cycles(1e6, 900.0, gpu, efficiency=0.9)
        t2 = transfer_cycles(2e6, 900.0, gpu, efficiency=0.9)
        assert t2 - 0 == pytest.approx(2 * t1, rel=1e-6)

    def test_latency_added_once(self, gpu):
        base = transfer_cycles(1e6, 900.0, gpu, efficiency=1.0)
        with_lat = transfer_cycles(1e6, 900.0, gpu, efficiency=1.0, latency_cycles=100.0)
        assert with_lat == pytest.approx(base + 100.0)

    def test_negative_bytes_rejected(self, gpu):
        with pytest.raises(ValueError):
            transfer_cycles(-1.0, 900.0, gpu)

    def test_bad_efficiency_rejected(self, gpu):
        with pytest.raises(ValueError):
            transfer_cycles(1.0, 900.0, gpu, efficiency=0.0)
        with pytest.raises(ValueError):
            transfer_cycles(1.0, 900.0, gpu, efficiency=1.5)


class TestLevelModels:
    def test_gmem_slower_than_l2(self, gpu):
        assert gmem_cycles(1e7, gpu) > l2_cycles(1e7, gpu)

    def test_smem_scales_with_active_sms(self, gpu):
        one = smem_cycles(1e7, gpu, active_sms=1)
        many = smem_cycles(1e7, gpu, active_sms=82)
        assert many < one

    def test_smem_conflicts_slow_it_down(self, gpu):
        clean = smem_cycles(1e7, gpu, active_sms=82, conflict_factor=1.0)
        conflicted = smem_cycles(1e7, gpu, active_sms=82, conflict_factor=4.0)
        assert conflicted > clean

    def test_smem_invalid_args(self, gpu):
        with pytest.raises(ValueError):
            smem_cycles(1.0, gpu, active_sms=0)
        with pytest.raises(ValueError):
            smem_cycles(1.0, gpu, active_sms=1, conflict_factor=0.5)

    def test_narrow_transactions_cost_more(self, gpu):
        wide = gmem_cycles(1e8, gpu, TransactionModel(128))
        narrow = gmem_cycles(1e8, gpu, TransactionModel(32))
        assert narrow > wide


class TestMatrixBytes:
    def test_fp16_matrix(self):
        assert matrix_bytes(128, 64, "fp16") == 128 * 64 * 2

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            matrix_bytes(-1, 4)
