"""Tests for the roofline kernel-cost combinator."""

import pytest

from repro.hardware.memory import TrafficRecord
from repro.hardware.occupancy import BlockResources
from repro.hardware.roofline import (
    KernelCost,
    compute_cycles_cuda_core,
    compute_cycles_tensor_core,
    roofline_cost,
)
from repro.hardware.spec import rtx3090


@pytest.fixture
def resources():
    return BlockResources(threads=256, registers_per_thread=128, smem_bytes=48 * 1024)


class TestComputeCycles:
    def test_tensor_core_sparse_is_twice_as_fast(self, gpu):
        dense = compute_cycles_tensor_core(1e12, gpu, sparse=False)
        sparse = compute_cycles_tensor_core(1e12, gpu, sparse=True)
        assert dense == pytest.approx(2 * sparse)

    def test_cuda_cores_slower_than_tensor_cores(self, gpu):
        assert compute_cycles_cuda_core(1e12, gpu) > compute_cycles_tensor_core(1e12, gpu)

    def test_efficiency_scales_time(self, gpu):
        full = compute_cycles_tensor_core(1e12, gpu, efficiency=1.0)
        half = compute_cycles_tensor_core(1e12, gpu, efficiency=0.5)
        assert half == pytest.approx(2 * full)

    def test_invalid_args(self, gpu):
        with pytest.raises(ValueError):
            compute_cycles_tensor_core(-1, gpu)
        with pytest.raises(ValueError):
            compute_cycles_tensor_core(1, gpu, efficiency=0)
        with pytest.raises(ValueError):
            compute_cycles_cuda_core(-1, gpu)


class TestKernelCost:
    def test_bound_identifies_dominant_term(self, gpu):
        cost = KernelCost(gpu=gpu, compute_cycles=100, gmem_cycles=10, smem_cycles=5)
        assert cost.bound == "compute"
        cost = KernelCost(gpu=gpu, compute_cycles=10, gmem_cycles=100, smem_cycles=5)
        assert cost.bound == "gmem"

    def test_total_includes_exposed_fraction(self, gpu):
        cost = KernelCost(
            gpu=gpu, compute_cycles=100, gmem_cycles=50, smem_cycles=10, overhead_cycles=5, exposed_fraction=0.2
        )
        assert cost.total_cycles == pytest.approx(5 + 100 + 0.2 * 60)

    def test_time_conversions(self, gpu):
        cost = KernelCost(gpu=gpu, compute_cycles=gpu.sm_clock_hz)  # one second of cycles
        assert cost.time_s() == pytest.approx(1.0, rel=1e-3)
        assert cost.time_ms() == pytest.approx(1e3, rel=1e-3)
        assert cost.time_us() == pytest.approx(1e6, rel=1e-3)

    def test_tflops(self, gpu):
        cost = KernelCost(gpu=gpu, compute_cycles=gpu.sm_clock_hz)  # 1 second
        assert cost.tflops(1e12) == pytest.approx(1.0, rel=1e-3)
        assert KernelCost(gpu=gpu).tflops(1e12) == 0.0

    def test_components_accumulate(self, gpu):
        cost = KernelCost(gpu=gpu)
        cost.add_component("x", 5.0)
        cost.add_component("x", 3.0)
        assert cost.components["x"] == 8.0


class TestRooflineCost:
    def test_compute_bound_large_flops(self, gpu, resources):
        cost = roofline_cost(
            gpu=gpu,
            flops=1e13,
            traffic=TrafficRecord(gmem_read_bytes=1e6),
            resources=resources,
            total_blocks=1000,
        )
        assert cost.bound == "compute"

    def test_memory_bound_large_traffic(self, gpu, resources):
        cost = roofline_cost(
            gpu=gpu,
            flops=1e6,
            traffic=TrafficRecord(gmem_read_bytes=1e10),
            resources=resources,
            total_blocks=1000,
        )
        assert cost.bound == "gmem"

    def test_sparse_tensor_cores_speed_up_compute(self, gpu, resources):
        kwargs = dict(
            gpu=gpu,
            flops=1e13,
            traffic=TrafficRecord(),
            resources=resources,
            total_blocks=1000,
        )
        dense = roofline_cost(use_tensor_cores=True, sparse_tensor_cores=False, **kwargs)
        sparse = roofline_cost(use_tensor_cores=True, sparse_tensor_cores=True, **kwargs)
        assert sparse.total_cycles < dense.total_cycles

    def test_extra_overhead_added(self, gpu, resources):
        base = roofline_cost(
            gpu=gpu, flops=1e9, traffic=TrafficRecord(), resources=resources, total_blocks=10
        )
        extra = roofline_cost(
            gpu=gpu,
            flops=1e9,
            traffic=TrafficRecord(),
            resources=resources,
            total_blocks=10,
            extra_overhead_cycles=1e5,
        )
        assert extra.total_cycles == pytest.approx(base.total_cycles + 1e5, rel=1e-6)

    def test_conflicts_increase_smem_time(self, gpu, resources):
        kwargs = dict(
            gpu=gpu,
            flops=1e6,
            traffic=TrafficRecord(smem_read_bytes=1e9, smem_write_bytes=1e9),
            resources=resources,
            total_blocks=1000,
        )
        clean = roofline_cost(smem_conflict_factor=1.0, **kwargs)
        conflicted = roofline_cost(smem_conflict_factor=8.0, **kwargs)
        assert conflicted.smem_cycles > clean.smem_cycles

    def test_zero_blocks_rejected(self, gpu, resources):
        with pytest.raises(ValueError):
            roofline_cost(gpu=gpu, flops=1, traffic=TrafficRecord(), resources=resources, total_blocks=0)

    def test_launch_overhead_always_present(self, gpu, resources):
        cost = roofline_cost(
            gpu=gpu, flops=0.0, traffic=TrafficRecord(), resources=resources, total_blocks=1
        )
        assert cost.overhead_cycles >= gpu.kernel_launch_overhead_us * 1e-6 * gpu.sm_clock_hz
