"""Tests for the occupancy calculator."""

import pytest

from repro.hardware.occupancy import (
    BlockResources,
    active_sms,
    blocks_per_sm,
    latency_hiding_factor,
    quantized_waves,
    wave_efficiency,
    waves,
)
from repro.hardware.spec import rtx3090


@pytest.fixture
def light_block():
    """A block with tiny resource needs (occupancy limited by block count)."""
    return BlockResources(threads=64, registers_per_thread=32, smem_bytes=1024)


@pytest.fixture
def heavy_block():
    """A block limited by shared memory."""
    return BlockResources(threads=256, registers_per_thread=128, smem_bytes=96 * 1024)


class TestBlockResources:
    def test_warps_rounded_up(self):
        assert BlockResources(threads=96, registers_per_thread=32, smem_bytes=0).warps == 3

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BlockResources(threads=0, registers_per_thread=32, smem_bytes=0)
        with pytest.raises(ValueError):
            BlockResources(threads=32, registers_per_thread=0, smem_bytes=0)
        with pytest.raises(ValueError):
            BlockResources(threads=32, registers_per_thread=32, smem_bytes=-1)


class TestBlocksPerSm:
    def test_light_block_limited_by_block_slots(self, light_block, gpu):
        occ = blocks_per_sm(light_block, gpu)
        assert occ.blocks_per_sm == gpu.max_blocks_per_sm
        assert occ.limiting_factor == "blocks"

    def test_heavy_block_limited_by_smem(self, heavy_block, gpu):
        occ = blocks_per_sm(heavy_block, gpu)
        assert occ.limiting_factor == "shared_memory"
        assert occ.blocks_per_sm == gpu.smem.capacity_bytes // heavy_block.smem_bytes

    def test_register_limit(self, gpu):
        block = BlockResources(threads=1024, registers_per_thread=255, smem_bytes=0)
        occ = blocks_per_sm(block, gpu)
        assert occ.limiting_factor in {"registers", "threads", "warps"}
        assert occ.blocks_per_sm <= 1

    def test_occupancy_fraction_bounded(self, light_block, heavy_block, gpu):
        for block in (light_block, heavy_block):
            occ = blocks_per_sm(block, gpu)
            assert 0.0 <= occ.occupancy <= 1.0


class TestWaves:
    def test_zero_blocks(self, light_block, gpu):
        assert waves(0, light_block, gpu) == 0.0
        assert quantized_waves(0, light_block, gpu) == 0

    def test_waves_scale_with_grid(self, heavy_block, gpu):
        assert waves(200, heavy_block, gpu) > waves(100, heavy_block, gpu)

    def test_quantized_is_ceiling(self, heavy_block, gpu):
        w = waves(150, heavy_block, gpu)
        assert quantized_waves(150, heavy_block, gpu) == pytest.approx(-(-w // 1))

    def test_negative_blocks_rejected(self, light_block, gpu):
        with pytest.raises(ValueError):
            waves(-1, light_block, gpu)

    def test_oversized_block_rejected(self, gpu):
        impossible = BlockResources(threads=1024, registers_per_thread=255, smem_bytes=512 * 1024)
        with pytest.raises(ValueError):
            waves(10, impossible, gpu)

    def test_wave_efficiency_full_wave(self, heavy_block, gpu):
        occ = blocks_per_sm(heavy_block, gpu)
        chip = occ.blocks_per_sm * gpu.num_sms
        assert wave_efficiency(chip, heavy_block, gpu) == pytest.approx(1.0)

    def test_wave_efficiency_partial_wave(self, heavy_block, gpu):
        occ = blocks_per_sm(heavy_block, gpu)
        chip = occ.blocks_per_sm * gpu.num_sms
        eff = wave_efficiency(chip + 1, heavy_block, gpu)
        assert 0.5 < eff < 1.0


class TestActiveSms:
    def test_small_grid_limits_sms(self, light_block, gpu):
        assert active_sms(4, light_block, gpu) <= 4

    def test_large_grid_uses_all_sms(self, light_block, gpu):
        assert active_sms(10_000, light_block, gpu) == gpu.num_sms

    def test_zero_blocks(self, light_block, gpu):
        assert active_sms(0, light_block, gpu) == 0


class TestLatencyHiding:
    def test_deeper_pipeline_hides_more(self, heavy_block, gpu):
        assert latency_hiding_factor(heavy_block, gpu, pipeline_stages=4) >= latency_hiding_factor(
            heavy_block, gpu, pipeline_stages=1
        )

    def test_bounded_by_one(self, light_block, gpu):
        assert latency_hiding_factor(light_block, gpu, pipeline_stages=8) <= 1.0

    def test_invalid_stage_count(self, light_block, gpu):
        with pytest.raises(ValueError):
            latency_hiding_factor(light_block, gpu, pipeline_stages=0)
