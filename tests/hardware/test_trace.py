"""Tests for the kernel execution trace records."""

import pytest

from repro.hardware.trace import ExecutionTrace, KernelExecution


def make_exec(kernel="spatha_spmm", category="gemm", time_us=100.0, flops=1e9):
    return KernelExecution(kernel=kernel, category=category, time_us=time_us, flops=flops)


class TestKernelExecution:
    def test_valid_categories_only(self):
        with pytest.raises(ValueError):
            KernelExecution(kernel="x", category="convolution", time_us=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            KernelExecution(kernel="x", category="gemm", time_us=-1.0)

    def test_tflops(self):
        e = make_exec(time_us=1e6, flops=1e12)  # 1 second, 1 TFLOP
        assert e.tflops == pytest.approx(1.0)
        assert KernelExecution(kernel="x", category="gemm", time_us=0.0).tflops == 0.0


class TestExecutionTrace:
    def test_record_and_totals(self):
        trace = ExecutionTrace()
        trace.record(make_exec(time_us=100))
        trace.record(make_exec(time_us=200, category="softmax"))
        assert trace.total_time_us == 300
        assert trace.total_time_ms == pytest.approx(0.3)

    def test_extend(self):
        trace = ExecutionTrace()
        trace.extend([make_exec(), make_exec()])
        assert len(trace.executions) == 2

    def test_time_by_category_has_stable_schema(self):
        trace = ExecutionTrace()
        trace.record(make_exec(category="gemm", time_us=10))
        cats = trace.time_by_category()
        assert set(cats) == {"gemm", "matmul", "softmax", "comm", "other"}
        assert cats["gemm"] == 10
        assert cats["softmax"] == 0
        assert cats["comm"] == 0

    def test_comm_time(self):
        trace = ExecutionTrace()
        trace.record(make_exec(kernel="allreduce", category="comm", time_us=4))
        trace.record(make_exec(category="gemm", time_us=6))
        assert trace.comm_time_us() == 4

    def test_time_by_kernel(self):
        trace = ExecutionTrace()
        trace.record(make_exec(kernel="a", time_us=5))
        trace.record(make_exec(kernel="a", time_us=5))
        trace.record(make_exec(kernel="b", time_us=1))
        assert trace.time_by_kernel() == {"a": 10, "b": 1}

    def test_gemm_time(self):
        trace = ExecutionTrace()
        trace.record(make_exec(category="gemm", time_us=7))
        trace.record(make_exec(category="other", time_us=3))
        assert trace.gemm_time_us() == 7

    def test_filter(self):
        trace = ExecutionTrace()
        trace.record(make_exec(kernel="a", category="gemm"))
        trace.record(make_exec(kernel="b", category="softmax"))
        assert len(trace.filter(category="gemm").executions) == 1
        assert len(trace.filter(kernel="b").executions) == 1
        assert len(trace.filter(category="gemm", kernel="b").executions) == 0

    def test_speedup_over(self):
        fast = ExecutionTrace([make_exec(time_us=50)])
        slow = ExecutionTrace([make_exec(time_us=100)])
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_empty_raises(self):
        empty = ExecutionTrace()
        slow = ExecutionTrace([make_exec(time_us=100)])
        with pytest.raises(ValueError):
            empty.speedup_over(slow)

    def test_summary_schema(self):
        trace = ExecutionTrace([make_exec()])
        summary = trace.summary()
        assert summary["num_kernels"] == 1
        assert "time_by_category_us" in summary
        assert "time_by_kernel_us" in summary
