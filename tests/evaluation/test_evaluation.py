"""Tests for the evaluation harness (sweeps, figures, reporting)."""

import numpy as np
import pytest

from repro.evaluation.figures import (
    figure9_columnloc_ablation,
    figure10_v_scaling,
    figure11_energy,
    figure12_baseline_24,
    figure13_library_comparison,
    figure15_end_to_end,
    table1_mma_shapes,
    table2_second_order_f1,
)
from repro.evaluation.reporting import (
    crossover_index,
    dominates,
    format_table,
    is_monotonic_decreasing,
    is_monotonic_increasing,
    rows_from_mapping,
    save_csv,
    save_json,
    within_factor,
)
from repro.evaluation.sweeps import dense_baseline, k_sweep, library_point, sparsity_sweep
from repro.kernels.common import GemmProblem


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_rows_from_mapping(self):
        rows = rows_from_mapping({"x": {"v": 1}}, key_name="k")
        assert rows == [{"k": "x", "v": 1}]

    def test_save_json_and_csv(self, tmp_path):
        path = save_json({"a": [1, 2]}, tmp_path / "out" / "data.json")
        assert path.exists()
        csv_path = save_csv([{"a": 1, "b": 2}, {"a": 3}], tmp_path / "rows.csv")
        content = csv_path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_monotonicity_helpers(self):
        assert is_monotonic_increasing([1, 2, 2, 3])
        assert not is_monotonic_increasing([1, 0.5])
        assert is_monotonic_decreasing([3, 2, 2, 1])
        assert is_monotonic_increasing([1.0, 0.99], tolerance=0.05)

    def test_dominates(self):
        assert dominates([2, 3], [1, 3])
        assert not dominates([1, 1], [2, 0])
        with pytest.raises(ValueError):
            dominates([1], [1, 2])

    def test_crossover_index(self):
        assert crossover_index([0.5, 0.9, 1.2, 3.0]) == 2
        assert crossover_index([0.5, 0.9]) is None

    def test_within_factor(self):
        assert within_factor(4.5, 5.0, 1.5)
        assert not within_factor(1.0, 5.0, 1.5)
        with pytest.raises(ValueError):
            within_factor(1.0, 5.0, 0.5)


class TestSweeps:
    def test_dense_baseline_ignores_sparsity(self, gpu):
        sparse_problem = GemmProblem.from_nm(256, 512, 256, 2, 8, v=64)
        dense = dense_baseline(sparse_problem, gpu=gpu)
        assert dense.problem.sparsity == 0.0
        assert dense.kernel == "cublas_hgemm"

    def test_k_sweep_schema(self, gpu):
        out = k_sweep(r=256, c=512, k_values=(512, 1024), n=2, m=8, v=64,
                      libraries=("spatha", "sputnik"), gpu=gpu)
        assert set(out) == {512, 1024}
        assert {p.library for p in out[512]} == {"spatha", "sputnik"}
        assert all(p.speedup_vs_dense > 0 for pts in out.values() for p in pts)

    def test_sparsity_sweep_skips_cusparselt_above_50(self, gpu):
        out = sparsity_sweep(r=256, k=512, c=512, patterns=((2, 4), (2, 8)), v=64,
                             libraries=("spatha", "cusparselt"), gpu=gpu)
        assert any(p.library == "cusparselt" for p in out[0.5])
        assert not any(p.library == "cusparselt" for p in out[0.75])

    def test_library_point_unknown_library(self, gpu):
        p = GemmProblem(64, 64, 64)
        with pytest.raises(ValueError):
            library_point(p, "tensorrt", dense_baseline(p, gpu=gpu), gpu=gpu)


class TestFigureHarnesses:
    """Smoke-level checks on reduced parameter grids (full grids run in benchmarks/)."""

    def test_table1(self):
        rows = table1_mma_shapes()
        precisions = {r["precision"] for r in rows}
        assert precisions == {"fp32", "fp16", "uint8", "uint4"}
        fp16 = next(r for r in rows if r["precision"] == "fp16")
        assert fp16["format"] == "2:4"
        assert "k32" in fp16["supported_shapes"]

    def test_figure9_reduced(self):
        out = figure9_columnloc_ablation(k_values=(2048, 4096), patterns=((2, 10),), v=128)
        assert set(out) == {"2:10"}
        for k, entry in out["2:10"].items():
            assert entry["without_columnloc"] >= entry["with_columnloc"] > 0
            assert entry["cap"] == 5.0

    def test_figure10_reduced(self):
        out = figure10_v_scaling(v_values=(64, 128), patterns=((2, 8),), k=2048, c=2048)
        entry = out["2:8"]
        assert set(entry) == {64, 128}
        for v in (64, 128):
            assert entry[v]["stores_128bit"] >= entry[v]["stores_32bit"]

    def test_figure11_reduced(self, rng):
        out = figure11_energy(weight=rng.normal(size=(128, 160)), sparsities=(0.5, 0.75),
                              v_values=(1, 32), vw_lengths=(8,))
        assert set(out) == {"ideal", "1:N:M", "32:N:M", "vw_8"}
        assert all(len(v) == 2 for v in out.values())

    def test_figure12_reduced(self):
        out = figure12_baseline_24(k_values=(2048,), models=("bert-base",))
        entry = out["bert-base"][2048]
        assert entry["spatha_speedup"] > 1.0
        assert entry["cusparselt_speedup"] > 1.0
        assert entry["spatha_tflops"] > entry["cublas_tflops"]

    def test_figure13_reduced(self):
        out = figure13_library_comparison(
            models=("bert-base",), batch_sizes=(8,), configurations=((128, 8),),
            patterns=((2, 4), (2, 20)),
        )
        panel = out["bert-base/bs=8/128:N:M,vw_8"]
        assert set(panel) == {0.5, 0.9}
        assert panel[0.5]["cublas"] == 1.0
        assert "cusparselt" in panel[0.5]
        assert "cusparselt" not in panel[0.9]
        assert panel[0.9]["spatha"] > panel[0.9]["clasp"]

    def test_table2_reduced(self):
        result = table2_second_order_f1(patterns=((2, 8),), rows=64, cols=128, num_grad_samples=16)
        assert result.dense_f1 > 85.0
        scores = result.scores["75% (2:8)"]
        assert set(scores) == {"1:N:M", "64:N:M", "vw_8"}
        assert all(50.0 < v <= 89.0 for v in scores.values())
        rows = result.as_rows()
        assert rows[0]["sparsity"] == "75% (2:8)"

    def test_figure15_reduced(self):
        from repro.models.config import BERT_BASE

        out = figure15_end_to_end(v_values=(64,), m_values=(16,),
                                  models=(("bert-base", BERT_BASE, 8, 2),), seq_len=128)
        plans = out["bert-base"]
        assert set(plans) == {"dense", "64:2:16"}
        assert plans["64:2:16"]["total"] < plans["dense"]["total"]
        assert plans["64:2:16"]["gemm"] < plans["dense"]["gemm"]
        assert plans["64:2:16"]["softmax"] == pytest.approx(plans["dense"]["softmax"], rel=1e-6)
