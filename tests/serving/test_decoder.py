"""Decoder serving: the cached-vs-recompute golden matrix and KV accounting.

The guarantee under test is the decode analogue of the serving property:
KV-cached decoding through :class:`DecoderServingEngine` is **bit-for-bit**
the full causal recompute (:func:`decode_reference`) at every generated
position — across arrival interleavings, step cadences, exact/ladder bucket
policies, layer counts and prompt lengths.  The full grid runs ``slow``;
a four-cell smoke stays in tier-1.

The rest pins the serving mechanics the cache adds: prefix sharing (same
bits, skipped prefill, copy-on-write isolation), rung occupancy across
multi-step residents, the KV-memory admission budget, block reclamation,
and the normalized ``stats()`` schema shared with the other engines.
"""

import numpy as np
import pytest

from repro.integration import VNMSparsifier, sparsify_encoder
from repro.models import TransformerEncoder, tiny_config
from repro.serving import (
    ContinuousBatcher,
    DecodeRequest,
    DecoderServingEngine,
    Request,
    SchedulingConfig,
    ShapeBucketBatcher,
    decode_reference,
)

HIDDEN = 64


def make_encoder(num_layers=1, seed=0):
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
    return encoder


def make_decode_requests(rng, prompt_lengths, new_tokens, arrivals):
    return [
        DecodeRequest(
            f"dec-{i:04d}",
            rng.normal(size=(p, HIDDEN)).astype(np.float32),
            new_tokens=n,
            arrival_us=a,
        )
        for i, (p, n, a) in enumerate(zip(prompt_lengths, new_tokens, arrivals))
    ]


def decoder_engine(encoder, padding="ladder", **kwargs):
    batcher = (
        ContinuousBatcher.ladder()
        if padding == "ladder"
        else ContinuousBatcher.exact_length()
    )
    return DecoderServingEngine(encoder, batcher=batcher, **kwargs)


def arrivals_for(pattern, n):
    if pattern == "together":
        return [0.0] * n
    if pattern == "staggered":
        return [3.0 * i for i in range(n)]
    if pattern == "reversed":
        # Later-submitted ids arrive first: exercises the FCFS tie-breaks.
        return [3.0 * (n - 1 - i) for i in range(n)]
    raise ValueError(pattern)


def run_golden_cell(rng, padding, num_layers, prompt_lengths, pattern, step_us):
    """One golden-matrix cell: serve cached, compare against recompute."""
    encoder = make_encoder(num_layers=num_layers)
    engine = decoder_engine(encoder, padding=padding, block_size=4, capacity_blocks=256)
    new_tokens = [3 + (i % 3) for i in range(len(prompt_lengths))]
    requests = make_decode_requests(
        rng, prompt_lengths, new_tokens, arrivals_for(pattern, len(prompt_lengths))
    )
    results = engine.serve_continuous(requests, step_us=step_us)
    assert sorted(results) == sorted(r.request_id for r in requests)
    for req in requests:
        expected = decode_reference(encoder, req.prompt, req.new_tokens)
        got = results[req.request_id]
        assert got.shape == (req.new_tokens, HIDDEN)
        assert np.array_equal(got, expected), (
            f"cached decode diverged from full recompute for {req.request_id} "
            f"(padding={padding}, layers={num_layers}, pattern={pattern}, "
            f"step_us={step_us})"
        )
    # Every decode's blocks were reclaimed; only registered prompt prefixes
    # keep references alive.
    stats = engine.cache_stats()
    assert stats["sequences"] == 0
    assert engine.batcher.kv_reserved == 0
    assert sum(engine.batcher._occupancy.values()) == 0


#: Tier-1 smoke: four cells spanning both padding modes, both layer counts,
#: all three arrival patterns and both cadence regimes.
GOLDEN_SMOKE = [
    ("ladder", 1, (5, 12), "together", 0.0),
    ("ladder", 2, (3, 9, 17), "staggered", 7.0),
    ("exact", 1, (6, 6, 11), "reversed", 0.0),
    ("exact", 2, (4, 2), "staggered", 3.0),
]


class TestGoldenDecodeMatrix:
    @pytest.mark.parametrize(
        "padding,num_layers,prompt_lengths,pattern,step_us", GOLDEN_SMOKE
    )
    def test_smoke_cells(self, rng, padding, num_layers, prompt_lengths, pattern, step_us):
        run_golden_cell(rng, padding, num_layers, prompt_lengths, pattern, step_us)

    @pytest.mark.slow
    @pytest.mark.parametrize("padding", ["ladder", "exact"])
    @pytest.mark.parametrize("num_layers", [1, 2])
    @pytest.mark.parametrize(
        "prompt_lengths", [(5,), (5, 12, 30, 7), (2, 2, 9, 9, 17)]
    )
    @pytest.mark.parametrize("pattern", ["together", "staggered", "reversed"])
    @pytest.mark.parametrize("step_us", [0.0, 4.5])
    def test_full_grid(self, rng, padding, num_layers, prompt_lengths, pattern, step_us):
        run_golden_cell(rng, padding, num_layers, prompt_lengths, pattern, step_us)


class TestPrefixSharing:
    def test_shared_prompt_skips_prefill_and_keeps_bits(self, rng):
        encoder = make_encoder(num_layers=2)
        engine = decoder_engine(encoder, block_size=4, capacity_blocks=128)
        prompt = rng.normal(size=(9, HIDDEN)).astype(np.float32)
        requests = [
            DecodeRequest("owner", prompt, new_tokens=5, arrival_us=0.0),
            DecodeRequest("sharer-1", prompt.copy(), new_tokens=5, arrival_us=10.0),
            DecodeRequest("sharer-2", prompt.copy(), new_tokens=3, arrival_us=20.0),
        ]
        results = engine.serve_continuous(requests, step_us=5.0)
        expected = decode_reference(encoder, prompt, 5)
        # Same prompt => identical generated rows (prefix length permitting),
        # whether the sequence prefilled or attached to the shared blocks.
        assert np.array_equal(results["owner"], expected)
        assert np.array_equal(results["sharer-1"], expected)
        assert np.array_equal(results["sharer-2"], expected[:3])
        stats = engine.cache_stats()
        assert engine.prefills == 1
        assert engine.prefills_skipped == 2
        assert stats["prefix_hits"] == 2
        # The prompt (9 tokens, block_size 4) ends in a partial block: each
        # sharer's first append copy-on-writes it.  The owner appends into
        # its own block table after registering (refcount > 1), so it COWs
        # too — sharing never mutates the registered prefix.
        assert stats["cow_copies"] == 3
        assert stats["prefix_entries"] == 1
        assert stats["sequences"] == 0  # all freed at completion

    def test_distinct_prompts_do_not_share(self, rng):
        engine = decoder_engine(make_encoder())
        a = rng.normal(size=(6, HIDDEN)).astype(np.float32)
        b = a + 1.0
        engine.serve(
            [
                DecodeRequest("pa", a, new_tokens=2),
                DecodeRequest("pb", b, new_tokens=2),
            ]
        )
        assert engine.prefills == 2
        assert engine.prefills_skipped == 0
        assert engine.cache_stats()["prefix_hits"] == 0


class TestRungOccupancy:
    def test_full_rung_defers_but_other_rungs_schedule(self, rng):
        encoder = make_encoder()
        engine = DecoderServingEngine(
            encoder, batcher=ContinuousBatcher.ladder(max_batch_size=1)
        )
        a = DecodeRequest("occ-a", rng.normal(size=(5, HIDDEN)).astype(np.float32), 4)
        b = DecodeRequest("occ-b", rng.normal(size=(6, HIDDEN)).astype(np.float32), 2)
        c = DecodeRequest("occ-c", rng.normal(size=(40, HIDDEN)).astype(np.float32), 2)
        for req in (a, b, c):
            engine.submit(req)
        key_ab = engine.batcher.bucket_key(a.as_request())
        assert key_ab == engine.batcher.bucket_key(b.as_request())  # same rung
        engine.step(0.0)  # admits a (rung slot now held); b must wait
        assert engine.batcher.occupied_slots(key_ab) == 1
        assert "occ-a" in engine._residents and "occ-b" not in engine._residents
        engine.step(0.0)  # a's rung is full, but c's rung is free: c admits
        assert "occ-c" in engine._residents
        assert "occ-b" not in engine._residents
        # Drive to completion: b is admitted only after a's slot frees.
        results = {}
        for _ in range(20):
            results.update(engine.step(0.0))
            if len(results) == 3:
                break
        assert sorted(results) == ["occ-a", "occ-b", "occ-c"]
        for req in (a, b, c):
            assert np.array_equal(
                results[req.request_id],
                decode_reference(encoder, req.prompt, req.new_tokens),
            )
        assert engine.batcher.occupied_slots(key_ab) == 0

    def test_completion_frees_slot_and_kv_reservation(self, rng):
        engine = DecoderServingEngine(
            make_encoder(), block_size=4, kv_budget_blocks=64
        )
        req = DecodeRequest("free-0", rng.normal(size=(5, HIDDEN)).astype(np.float32), 3)
        engine.submit(req)
        assert engine.batcher.kv_reserved == 2  # ceil((5 + 3) / 4)
        engine.serve_continuous([])  # drains the pre-queued request
        assert engine.batcher.kv_reserved == 0
        assert engine.cache_stats()["sequences"] == 0
        assert engine.outcomes["free-0"].status == "ok"


class TestKVBudgetAdmission:
    def test_budget_sheds_beyond_reserved_blocks(self, rng):
        engine = DecoderServingEngine(
            make_encoder(), block_size=4, kv_budget_blocks=3
        )
        fits = DecodeRequest("kv-fit", rng.normal(size=(5, HIDDEN)).astype(np.float32), 3)
        too_big = DecodeRequest(
            "kv-big", rng.normal(size=(9, HIDDEN)).astype(np.float32), 8
        )
        assert engine.submit(fits) is not None  # 2 of 3 blocks reserved
        assert engine.submit(too_big) is None  # needs ceil(17/4)=5 > 3
        results = engine.serve_continuous([])
        assert sorted(results) == ["kv-fit"]
        assert engine.outcomes["kv-big"].status == "shed"
        assert engine.stats()["admission"]["shed"] == 1
        # The shed request never reserved anything; the served one released.
        assert engine.batcher.kv_reserved == 0

    def test_budget_admits_again_after_release(self, rng):
        engine = DecoderServingEngine(
            make_encoder(), block_size=4, kv_budget_blocks=2
        )
        first = DecodeRequest("kvr-0", rng.normal(size=(5, HIDDEN)).astype(np.float32), 3)
        engine.serve([first])  # completes; reservation released
        later = DecodeRequest("kvr-1", rng.normal(size=(5, HIDDEN)).astype(np.float32), 3)
        assert engine.submit(later) is not None
        results = engine.serve_continuous([])
        assert "kvr-1" in results


class TestPreemptionGoldenCells:
    """The SLO tentpole's decode guarantee: a preempted resident releases
    its rung slot but KEEPS its KV blocks, and resumes bit-exactly from
    them — preemption moves work, never numerics."""

    def _engine(self, **scheduling_kwargs):
        from repro.serving import ServingConfig

        scheduling = SchedulingConfig(
            policy="priority", preemption=True, **scheduling_kwargs
        )
        return DecoderServingEngine(
            make_encoder(),
            batcher=ContinuousBatcher.ladder(
                max_batch_size=1, scheduling=scheduling
            ),
            config=ServingConfig(block_size=4, capacity_blocks=128),
        )

    def test_preempted_decode_resumes_bit_exact_from_retained_kv(self, rng):
        encoder = make_encoder()
        engine = self._engine()
        low = DecodeRequest(
            "low", rng.normal(size=(5, HIDDEN)).astype(np.float32),
            new_tokens=6, arrival_us=0.0,
        )
        high = DecodeRequest(
            "high", rng.normal(size=(6, HIDDEN)).astype(np.float32),
            new_tokens=2, arrival_us=2.0, priority_class=1,
        )
        # Same rung (prompts 5 and 6 both bucket to 8), one slot: the high
        # class can only run by evicting the mid-flight low decode.
        key = engine.batcher.bucket_key(low.as_request())
        assert key == engine.batcher.bucket_key(high.as_request())
        results = engine.serve_continuous([low, high], step_us=1.0)
        assert engine.preemptions >= 1
        assert engine.resumes >= 1
        # The high class finished first despite arriving mid-decode...
        assert (
            engine.completions["high"].completed_us
            < engine.completions["low"].completed_us
        )
        # ... and BOTH outputs are bit-for-bit the fault-free recompute —
        # the resumed decode continued from its retained blocks exactly.
        for req in (low, high):
            expected = decode_reference(encoder, req.prompt, req.new_tokens)
            assert np.array_equal(results[req.request_id], expected), req.request_id
        # Everything reclaimed: slots, KV blocks, budget, parking lot.
        stats = engine.stats()
        assert stats["preempted_parked"] == 0
        assert engine.cache_stats()["sequences"] == 0
        assert engine.batcher.kv_reserved == 0
        assert sum(engine.batcher._occupancy.values()) == 0

    def test_preemption_runs_are_deterministic(self, rng):
        def run():
            local = np.random.default_rng(21)
            engine = self._engine()
            reqs = [
                DecodeRequest(
                    f"det-{i}", local.normal(size=(5 + i % 2, HIDDEN)).astype(np.float32),
                    new_tokens=3 + i % 3, arrival_us=float(i),
                    priority_class=i % 2,
                )
                for i in range(5)
            ]
            engine.serve_continuous(reqs, step_us=1.0)
            return (
                engine.preemptions,
                engine.resumes,
                {rid: (rec.step, rec.completed_us) for rid, rec in engine.completions.items()},
            )

        assert run() == run()

    def test_preempted_then_expired_decode_frees_parked_kv(self, rng):
        """A preempted decode whose deadline passes while parked is torn
        down completely: timed_out outcome, parked KV blocks freed, budget
        reservation returned (the `_expire_pending` override)."""
        engine = self._engine()
        low = DecodeRequest(
            "doomed", rng.normal(size=(5, HIDDEN)).astype(np.float32),
            new_tokens=12, arrival_us=0.0, deadline_us=4.0,
        )
        high = DecodeRequest(
            "vip", rng.normal(size=(6, HIDDEN)).astype(np.float32),
            new_tokens=8, arrival_us=1.0, priority_class=1,
        )
        results = engine.serve_continuous([low, high], step_us=1.0)
        assert engine.preemptions >= 1
        assert engine.resumes == 0  # the victim never came back
        assert engine.outcomes["doomed"].status == "timed_out"
        assert "doomed" not in results
        expected = decode_reference(make_encoder(), high.prompt, high.new_tokens)
        assert np.array_equal(results["vip"], expected)
        assert engine.stats()["preempted_parked"] == 0
        assert engine.cache_stats()["sequences"] == 0
        assert engine.batcher.kv_reserved == 0
        assert sum(engine.batcher._occupancy.values()) == 0

    def test_no_preemption_within_the_same_class(self, rng):
        """Equal classes never evict each other: the second request waits
        for the slot like plain FCFS."""
        engine = self._engine()
        a = DecodeRequest(
            "peer-a", rng.normal(size=(5, HIDDEN)).astype(np.float32),
            new_tokens=4, arrival_us=0.0, priority_class=1,
        )
        b = DecodeRequest(
            "peer-b", rng.normal(size=(6, HIDDEN)).astype(np.float32),
            new_tokens=2, arrival_us=1.0, priority_class=1,
        )
        results = engine.serve_continuous([a, b], step_us=1.0)
        assert engine.preemptions == 0
        assert len(results) == 2
        assert (
            engine.completions["peer-a"].completed_us
            < engine.completions["peer-b"].completed_us
        )


class TestCacheLifecycle:
    def test_exhaustion_raises_with_block_accounting(self, rng):
        engine = DecoderServingEngine(
            make_encoder(), block_size=2, capacity_blocks=2
        )
        engine.submit(
            DecodeRequest("ex-0", rng.normal(size=(5, HIDDEN)).astype(np.float32), 2)
        )
        with pytest.raises(RuntimeError, match="KV cache exhausted"):
            engine.step(0.0)

    def test_blocks_reclaimed_across_waves(self, rng):
        """Serving wave after wave reuses the same small pool: peak usage is
        bounded by the concurrent footprint, not the request count."""
        engine = DecoderServingEngine(
            make_encoder(), block_size=4, capacity_blocks=16
        )
        for wave in range(4):
            reqs = [
                DecodeRequest(
                    f"wave{wave}-{i}",
                    np.asarray(
                        np.linspace(0, 1, 6 * HIDDEN).reshape(6, HIDDEN) + wave + i,
                        dtype=np.float32,
                    ),
                    new_tokens=3,
                )
                for i in range(2)
            ]
            out = engine.serve(reqs)
            assert len(out) == 2
        stats = engine.cache_stats()
        assert stats["sequences"] == 0
        assert stats["blocks_in_use"] <= stats["capacity_blocks"]
        # Prefix entries hold blocks until evicted, but live-sequence usage
        # always returned to zero between waves.
        assert engine.batcher.kv_reserved == 0

    def test_prefix_eviction_frees_pool_under_pressure(self, rng):
        """When the pool runs dry, registered prefixes are evicted LRU to
        make room for live sequences (the ``evictions`` counter)."""
        engine = DecoderServingEngine(
            make_encoder(), block_size=2, capacity_blocks=8
        )
        for i in range(4):
            prompt = rng.normal(size=(4, HIDDEN)).astype(np.float32)
            engine.serve([DecodeRequest(f"evict-{i}", prompt, new_tokens=2)])
        stats = engine.cache_stats()
        assert stats["evictions"] >= 1
        assert stats["sequences"] == 0


class TestDecoderIntakeAndStats:
    def test_submit_validates_type_and_width(self, rng):
        engine = DecoderServingEngine(make_encoder())
        with pytest.raises(TypeError, match="DecodeRequest"):
            engine.submit(Request("nope", rng.normal(size=(4, HIDDEN)).astype(np.float32)))
        with pytest.raises(ValueError, match="hidden size"):
            engine.submit(
                DecodeRequest("narrow", rng.normal(size=(4, 32)).astype(np.float32), 2)
            )

    def test_decode_request_validation(self):
        with pytest.raises(ValueError, match="new_tokens"):
            DecodeRequest("bad-n", np.zeros((3, HIDDEN), dtype=np.float32), 0)
        with pytest.raises(ValueError, match="prompt"):
            DecodeRequest("bad-p", np.zeros((0, HIDDEN), dtype=np.float32), 2)

    def test_step_requires_continuous_batcher(self):
        engine = DecoderServingEngine(
            make_encoder(), batcher=ShapeBucketBatcher.ladder()
        )
        with pytest.raises(TypeError, match="step-schedulable"):
            engine.step(0.0)

    def test_direct_batcher_queueing_is_rejected_at_admission(self, rng):
        engine = DecoderServingEngine(make_encoder())
        engine.batcher.submit(
            Request("bypass", rng.normal(size=(4, HIDDEN)).astype(np.float32))
        )
        with pytest.raises(ValueError, match="decode length"):
            engine.step(0.0)

    def test_stats_schema_is_normalized(self, rng):
        engine = DecoderServingEngine(make_encoder(), kv_budget_blocks=32)
        engine.serve(
            [DecodeRequest("st-0", rng.normal(size=(5, HIDDEN)).astype(np.float32), 2)]
        )
        stats = engine.stats()
        assert stats["continuous"]["completions"] == 1
        assert stats["continuous"]["steps"] == engine.steps_executed
        admission = stats["admission"]
        for key in (
            "max_queue_depth",
            "shed_policy",
            "shed",
            "expired",
            "pending",
            "kv_budget_blocks",
            "kv_reserved",
            "occupied_slots",
            "policy",
            "per_class",
        ):
            assert key in admission
        assert admission["kv_budget_blocks"] == 32
        # SLO scheduling unused: FCFS policy, one zeroed per-class block,
        # and the preemption counters sit at zero — normalized, not absent.
        assert admission["policy"] == "fcfs"
        assert admission["per_class"] == {0: {"shed": 0, "expired": 0, "pending": 0}}
        assert stats["preemptions"] == 0
        assert stats["resumes"] == 0
        assert stats["preempted_parked"] == 0
        assert stats["cache"]["block_size"] == engine.kv.block_size
        assert stats["outcomes"]["ok"] == 1

    def test_completion_records_are_deterministic(self, rng):
        def run():
            engine = decoder_engine(make_encoder())
            requests = make_decode_requests(
                rng_local, (5, 12, 5), (3, 2, 4), arrivals_for("staggered", 3)
            )
            engine.serve_continuous(requests, step_us=2.0)
            return {
                rid: (rec.step, rec.rung, rec.batch_size, rec.completed_us)
                for rid, rec in engine.completions.items()
            }

        rng_local = np.random.default_rng(7)
        first = run()
        rng_local = np.random.default_rng(7)
        second = run()
        assert first == second
