"""SLO-aware scheduling: planner equivalence, preemption mechanics, traffic
models, and the per-class overload acceptance criterion.

The property at the centre (the ISSUE's satellite 1): the optimized
:func:`plan_slo_batch` emits exactly the chunk sequence of its loop-form
sibling :func:`plan_slo_batch_reference` — across random arrivals,
priority classes, deadlines, rung capacities and shed policies — and the
live :class:`ContinuousBatcher` under a :class:`SchedulingConfig` never
drifts from either.  Scheduling stays numerics-free, so these tests are
pure bookkeeping; the bit-exactness cells live in ``test_continuous.py``
and ``test_decoder.py``.

The acceptance criterion from the ISSUE is pinned here end to end: under a
seeded bursty two-tenant overload, strict-priority scheduling puts the
high class's p99 strictly below FCFS's, with shed/violations concentrated
in the low class.  Every test is seeded — no statistical flake.
"""

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask
from repro.kernels.dispatch import SpmmOperand
from repro.serving import (
    BucketKey,
    ContinuousBatcher,
    Request,
    SchedulingConfig,
    SimulatedRequest,
    bursty_arrivals,
    diurnal_arrivals,
    merge_arrivals,
    pareto_lengths,
    plan_continuous_batch,
    plan_slo_batch,
    plan_slo_batch_reference,
    simulate_slo,
    sweep_slo_overload,
)

HIDDEN = 64
K_FEATURES = 128


@pytest.fixture
def operand(rng):
    dense = rng.normal(size=(64, K_FEATURES))
    pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=8)).astype(np.float32)
    return SpmmOperand.from_vnm(
        VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=8, strict=True)
    )


def payload(rng, tokens):
    return rng.normal(size=(tokens, HIDDEN)).astype(np.float32)


class TestSchedulingConfig:
    def test_defaults_are_inactive_fcfs(self):
        config = SchedulingConfig()
        assert config.policy == "fcfs"
        assert not config.preemption
        assert not config.active
        assert config.num_classes == 1
        assert config.weight_of(3) == 1
        assert config.queue_bound_of(0) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "lifo"},
            {"class_weights": (0,)},
            {"class_weights": (1, -2)},
            {"class_queue_depths": (0,)},
            {"policy": "weighted-fair"},  # weights are mandatory for WF
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SchedulingConfig(**kwargs)

    def test_any_departure_from_fcfs_is_active(self):
        assert SchedulingConfig(policy="priority").active
        assert SchedulingConfig(preemption=True).active
        assert SchedulingConfig(class_weights=(1, 2)).active
        assert SchedulingConfig(class_queue_depths=(4,)).active

    def test_queue_bounds_explicit_and_weight_derived(self):
        explicit = SchedulingConfig(class_queue_depths=(2, None))
        assert explicit.queue_bound_of(0) == 2
        assert explicit.queue_bound_of(1) is None  # explicitly unbounded
        assert explicit.queue_bound_of(7) is None  # beyond the tuple
        # Weight-derived split: ceil(max_queue_depth * w_c / sum(w)).
        derived = SchedulingConfig(class_weights=(1, 3))
        assert derived.queue_bound_of(0, max_queue_depth=8) == 2
        assert derived.queue_bound_of(1, max_queue_depth=8) == 6
        assert derived.queue_bound_of(0, max_queue_depth=None) is None
        # Explicit depth wins over the derived split.
        both = SchedulingConfig(class_weights=(1, 3), class_queue_depths=(5,))
        assert both.queue_bound_of(0, max_queue_depth=8) == 5
        assert both.queue_bound_of(1, max_queue_depth=8) == 6


class TestPlannerEquivalence:
    """Satellite 1: ``plan_slo_batch`` == ``plan_slo_batch_reference``."""

    POLICIES = ["fcfs", "priority", "weighted-fair"]

    def _random_items(self, rng, n):
        buckets = [8, 16, 32]
        return [
            (
                f"it-{i:03d}",
                BucketKey(features=K_FEATURES, token_bucket=int(rng.choice(buckets))),
                float(rng.uniform(0.0, 100.0)),
                int(rng.integers(0, 4)),
                float(rng.uniform(50.0, 500.0)) if rng.random() < 0.6 else None,
            )
            for i in range(n)
        ]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_random_items_match_reference(self, rng, policy):
        for trial in range(60):
            items = self._random_items(rng, int(rng.integers(0, 14)))
            caps = {8: int(rng.integers(0, 4)), 16: int(rng.integers(0, 4)), 32: 4}
            served = {c: int(rng.integers(0, 10)) for c in range(4)}
            kwargs = dict(
                key_of=lambda it: it[1],
                arrival_of=lambda it: it[2],
                id_of=lambda it: it[0],
                max_batch_size=3,
                class_of=lambda it: it[3],
                deadline_of=lambda it: it[4],
                policy=policy,
                class_weights=(1, 2, 4, 1),
                served_by_class=served,
                capacity_of=lambda key: caps[key.token_bucket],
            )
            expected = plan_slo_batch_reference(items, **kwargs)
            got = plan_slo_batch(items, **kwargs)
            if expected is None:
                assert got is None, trial
            else:
                assert got is not None, trial
                assert got[0] == expected[0], trial
                assert [it[0] for it in got[1]] == [it[0] for it in expected[1]], trial

    def test_fcfs_policy_matches_continuous_planner(self, rng):
        """With no capacity limits the FCFS policy is exactly the original
        continuous planner — the SLO layer is a strict superset."""
        for _ in range(20):
            items = self._random_items(rng, int(rng.integers(1, 12)))
            kwargs = dict(
                key_of=lambda it: it[1],
                arrival_of=lambda it: it[2],
                id_of=lambda it: it[0],
                max_batch_size=4,
            )
            old = plan_continuous_batch(items, **kwargs)
            new = plan_slo_batch(items, policy="fcfs", **kwargs)
            assert new[0] == old[0]
            assert [it[0] for it in new[1]] == [it[0] for it in old[1]]

    def test_priority_takes_highest_class_with_capacity(self):
        key = BucketKey(features=4, token_bucket=8)
        full = BucketKey(features=4, token_bucket=16)
        items = [
            ("low-old", key, 0.0, 0, None),
            ("high-late", key, 9.0, 2, None),
            ("higher-but-blocked", full, 1.0, 3, None),
        ]
        key_got, chunk = plan_slo_batch(
            items,
            key_of=lambda it: it[1],
            arrival_of=lambda it: it[2],
            id_of=lambda it: it[0],
            max_batch_size=4,
            class_of=lambda it: it[3],
            deadline_of=lambda it: it[4],
            policy="priority",
            capacity_of=lambda k: 0 if k == full else 4,
        )
        # Class 3 has no schedulable rung; class 2 wins; the chunk is
        # class-pure (the older class-0 request does not ride along).
        assert key_got == key
        assert [it[0] for it in chunk] == ["high-late"]

    def test_edf_orders_within_the_class(self):
        key = BucketKey(features=4, token_bucket=8)
        items = [
            ("no-deadline", key, 0.0, 1, None),
            ("loose", key, 5.0, 1, 900.0),
            ("tight", key, 9.0, 1, 100.0),
        ]
        _, chunk = plan_slo_batch(
            items,
            key_of=lambda it: it[1],
            arrival_of=lambda it: it[2],
            id_of=lambda it: it[0],
            max_batch_size=2,
            class_of=lambda it: it[3],
            deadline_of=lambda it: it[4],
            policy="priority",
        )
        # Tightest deadline first; deadline-free requests sort last.
        assert [it[0] for it in chunk] == ["tight", "loose"]

    def test_weighted_fair_serves_the_most_underserved_class(self):
        key = BucketKey(features=4, token_bucket=8)
        items = [("a0", key, 0.0, 0, None), ("a1", key, 0.0, 1, None)]
        kwargs = dict(
            key_of=lambda it: it[1],
            arrival_of=lambda it: it[2],
            id_of=lambda it: it[0],
            max_batch_size=1,
            class_of=lambda it: it[3],
            policy="weighted-fair",
            class_weights=(1, 3),
        )
        # 3:1 service so far matches the weights exactly: tie, higher class.
        _, chunk = plan_slo_batch(items, served_by_class={0: 1, 1: 3}, **kwargs)
        assert chunk[0][0] == "a1"
        # Class 1 over its share: the low class wins its turn.
        _, chunk = plan_slo_batch(items, served_by_class={0: 1, 1: 6}, **kwargs)
        assert chunk[0][0] == "a0"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            plan_slo_batch(
                [], key_of=None, arrival_of=None, id_of=None,
                max_batch_size=1, policy="lifo",
            )


class TestBatcherChunkSequenceProperty:
    """The live batcher under a SchedulingConfig emits exactly the reference
    planner's chunk sequence — the incremental/per-class bookkeeping never
    drifts from the flat-list specification."""

    @pytest.mark.parametrize(
        "policy,scheduling_kwargs,shed_kwargs",
        [
            ("priority", {}, {}),
            ("priority", {}, {"max_queue_depth": 6, "shed_policy": "drop-expired"}),
            (
                "priority",
                {"class_queue_depths": (3, None, None, None)},
                {"max_queue_depth": 8, "shed_policy": "reject-newest"},
            ),
            ("weighted-fair", {"class_weights": (1, 2, 4, 1)}, {}),
            (
                "weighted-fair",
                {"class_weights": (1, 2, 4, 1)},
                {"max_queue_depth": 6, "shed_policy": "drop-expired"},
            ),
        ],
        ids=[
            "priority",
            "priority-drop-expired",
            "priority-class-bounds",
            "weighted-fair",
            "weighted-fair-drop-expired",
        ],
    )
    def test_chunk_sequence_matches_reference_planner(
        self, rng, policy, scheduling_kwargs, shed_kwargs
    ):
        for _ in range(3):
            scheduling = SchedulingConfig(policy=policy, **scheduling_kwargs)
            batcher = ContinuousBatcher.ladder(
                max_batch_size=3, scheduling=scheduling, **shed_kwargs
            )
            n = 24
            lengths = rng.integers(1, 20, size=n)
            arrivals = np.sort(rng.uniform(0.0, 1000.0, size=n))
            reqs = [
                Request(
                    f"slo-{i:04d}",
                    payload(rng, int(t)),
                    arrival_us=float(a),
                    deadline_us=(float(a + rng.uniform(5.0, 400.0))
                                 if rng.random() < 0.5 else None),
                    priority_class=int(rng.integers(0, 4)),
                )
                for i, (t, a) in enumerate(zip(lengths, arrivals))
            ]
            mirror = {}
            mirror_served = {}
            cadence = float(rng.uniform(20.0, 120.0))
            now, i, steps = 0.0, 0, 0
            while (i < len(reqs) or batcher.pending) and steps < 10_000:
                steps += 1
                before = len(batcher.expired_log)
                while i < len(reqs) and reqs[i].arrival_us <= now:
                    request = reqs[i]
                    i += 1
                    if batcher.submit(request) is not None:
                        mirror[request.request_id] = request
                for evicted in batcher.expired_log[before:]:
                    mirror.pop(evicted.request_id, None)
                for expired in batcher.expire_due(now):
                    mirror.pop(expired.request_id)
                reference = plan_slo_batch_reference(
                    [r for r in mirror.values() if r.arrival_us <= now],
                    key_of=batcher.bucket_key,
                    arrival_of=lambda r: r.arrival_us,
                    id_of=lambda r: r.request_id,
                    max_batch_size=batcher.max_batch_size,
                    class_of=lambda r: r.priority_class,
                    deadline_of=lambda r: r.deadline_us,
                    policy=scheduling.policy,
                    class_weights=scheduling.class_weights,
                    served_by_class=mirror_served,
                )
                batch = batcher.next_batch(now)
                if reference is None:
                    assert batch is None
                else:
                    ref_key, ref_chunk = reference
                    assert batch is not None
                    assert batch.key == ref_key
                    assert [r.request_id for r in batch.requests] == [
                        r.request_id for r in ref_chunk
                    ]
                    cls = ref_chunk[0].priority_class  # non-FCFS: class-pure
                    mirror_served[cls] = mirror_served.get(cls, 0) + len(ref_chunk)
                    for r in batch.requests:
                        mirror.pop(r.request_id)
                if batch is None and i < len(reqs):
                    now = max(now + cadence, reqs[i].arrival_us)
                else:
                    now += cadence
            assert steps < 10_000, "SLO scheduler failed to drain the schedule"
            assert not mirror and batcher.pending == 0

    def test_scheduled_chunks_keep_their_kv_reservation(self, rng):
        """Leaving the queue to execute must NOT release the KV budget —
        only shedding/expiry does (regression guard on the `_remove_queued`
        vs `_evict` split)."""
        batcher = ContinuousBatcher.ladder(
            scheduling=SchedulingConfig(policy="priority"),
            kv_budget_blocks=10,
            kv_cost=lambda r: 2,
        )
        batcher.submit(Request("kv-0", payload(rng, 5), priority_class=1))
        assert batcher.kv_reserved == 2
        batch = batcher.next_batch(0.0)
        assert [r.request_id for r in batch.requests] == ["kv-0"]
        assert batcher.kv_reserved == 2  # still held by the executing request
        assert batcher.release_kv("kv-0") == 2
        assert batcher.kv_reserved == 0


class TestPerClassAdmission:
    def test_class_bound_sheds_only_that_class(self, rng):
        scheduling = SchedulingConfig(
            policy="priority", class_queue_depths=(1, None)
        )
        batcher = ContinuousBatcher.ladder(scheduling=scheduling)
        assert batcher.submit(Request("low-0", payload(rng, 5))) is not None
        assert batcher.submit(Request("low-1", payload(rng, 5))) is None  # bound 1
        assert batcher.submit(
            Request("high-0", payload(rng, 5), priority_class=1)
        ) is not None
        assert batcher.submit(
            Request("high-1", payload(rng, 5), priority_class=1)
        ) is not None
        per_class = batcher.per_class_stats()
        assert per_class[0] == {"shed": 1, "expired": 0, "pending": 1}
        assert per_class[1] == {"shed": 0, "expired": 0, "pending": 2}
        assert batcher.total_shed == 1

    def test_weight_derived_bounds_split_the_global_depth(self, rng):
        scheduling = SchedulingConfig(class_weights=(1, 3))
        batcher = ContinuousBatcher.ladder(
            scheduling=scheduling, max_queue_depth=4
        )
        assert batcher.class_queue_bound(0) == 1
        assert batcher.class_queue_bound(1) == 3
        assert batcher.submit(Request("c0-a", payload(rng, 5))) is not None
        # Class 0's derived share is exhausted even though the global queue
        # has room.
        assert batcher.submit(Request("c0-b", payload(rng, 5))) is None
        assert batcher.submit(
            Request("c1-a", payload(rng, 5), priority_class=1)
        ) is not None

    def test_admission_stats_carry_policy_and_per_class(self, rng):
        batcher = ContinuousBatcher.ladder(
            scheduling=SchedulingConfig(policy="weighted-fair", class_weights=(1, 2))
        )
        batcher.submit(Request("r0", payload(rng, 5), priority_class=1))
        stats = batcher.admission_stats()
        assert stats["policy"] == "weighted-fair"
        assert stats["per_class"] == {
            0: {"shed": 0, "expired": 0, "pending": 0},
            1: {"shed": 0, "expired": 0, "pending": 1},
        }


class TestPreemptionMechanics:
    def _batcher(self, **kwargs):
        scheduling = SchedulingConfig(policy="priority", preemption=True, **kwargs)
        return ContinuousBatcher.ladder(max_batch_size=1, scheduling=scheduling)

    def test_victim_is_lowest_class_then_smallest_id(self, rng):
        batcher = self._batcher()
        key = BucketKey(features=HIDDEN, token_bucket=8)
        batcher.acquire_slot(key, Request("b", payload(rng, 5), priority_class=0))
        batcher.acquire_slot(key, Request("a", payload(rng, 5), priority_class=0))
        batcher.acquire_slot(key, Request("c", payload(rng, 5), priority_class=1))
        assert batcher.preemption_victim(key, priority_class=2) == "a"
        assert batcher.preemption_victim(key, priority_class=1) == "a"
        # Nothing strictly below class 0 exists.
        assert batcher.preemption_victim(key, priority_class=0) is None
        batcher.release_slot(key, "a")
        assert batcher.preemption_victim(key, priority_class=1) == "b"

    def test_anonymous_holders_are_never_victims(self):
        batcher = self._batcher()
        key = BucketKey(features=HIDDEN, token_bucket=8)
        batcher.acquire_slot(key)  # legacy call without a request
        assert batcher.occupied_slots(key) == 1
        assert batcher.preemption_victim(key, priority_class=3) is None

    def test_target_requires_full_rung_and_enabled_preemption(self, rng):
        batcher = self._batcher()
        high = Request("high", payload(rng, 5), priority_class=1)
        batcher.submit(high)
        key = batcher.bucket_key(high)
        # Free slots: the request can simply be scheduled — no preemption.
        assert batcher.preemption_target(0.0) is None
        batcher.acquire_slot(key, Request("low", payload(rng, 5), priority_class=0))
        target = batcher.preemption_target(0.0)
        assert target is not None
        got_key, head = target
        assert got_key == key and head.request_id == "high"
        # Disabled preemption never proposes a target.
        off = ContinuousBatcher.ladder(
            max_batch_size=1, scheduling=SchedulingConfig(policy="priority")
        )
        off.submit(Request("h2", payload(rng, 5), priority_class=1))
        off.acquire_slot(off.bucket_key(high), Request("l2", payload(rng, 5)))
        assert off.preemption_target(0.0) is None

    def test_requeue_bypasses_admission_and_rejects_duplicates(self, rng):
        batcher = ContinuousBatcher.ladder(
            max_queue_depth=1,
            scheduling=SchedulingConfig(policy="priority", preemption=True),
        )
        filler = Request("filler", payload(rng, 5))
        batcher.submit(filler)
        preempted = Request("preempted", payload(rng, 5), priority_class=0)
        # The queue is at its global bound, but a preempted resident must
        # always be able to come back.
        batcher.requeue(preempted)
        assert batcher.is_queued("preempted")
        assert batcher.pending == 2
        with pytest.raises(ValueError, match="preempted"):
            batcher.requeue(preempted)


class TestTrafficModels:
    def test_generators_replay_identically_from_seed(self):
        kwargs = dict(num_requests=40, tokens=[4, 9], deadline_after_us=500.0)
        assert bursty_arrivals(
            base_rate_rps=1e3, burst_rate_rps=1e4, seed=7, **kwargs
        ) == bursty_arrivals(base_rate_rps=1e3, burst_rate_rps=1e4, seed=7, **kwargs)
        assert diurnal_arrivals(
            peak_rate_rps=1e4, trough_rate_rps=1e3, seed=7, **kwargs
        ) == diurnal_arrivals(peak_rate_rps=1e4, trough_rate_rps=1e3, seed=7, **kwargs)
        assert pareto_lengths(64, seed=7) == pareto_lengths(64, seed=7)
        # A different seed actually changes the draw.
        assert bursty_arrivals(
            base_rate_rps=1e3, burst_rate_rps=1e4, seed=8, **kwargs
        ) != bursty_arrivals(base_rate_rps=1e3, burst_rate_rps=1e4, seed=7, **kwargs)

    def test_streams_are_stamped_and_ordered(self):
        stream = bursty_arrivals(
            30, base_rate_rps=2e3, burst_rate_rps=2e4, tokens=[3, 8],
            seed=1, deadline_after_us=250.0, prefix="t", priority_class=2,
        )
        assert len(stream) == 30
        assert len({r.request_id for r in stream}) == 30
        arrivals = [r.arrival_us for r in stream]
        assert arrivals == sorted(arrivals)
        for i, req in enumerate(stream):
            assert req.priority_class == 2
            assert req.tokens == [3, 8][i % 2]
            assert req.deadline_us == pytest.approx(req.arrival_us + 250.0)

    def test_pareto_lengths_respect_bounds(self):
        lengths = pareto_lengths(256, alpha=1.2, min_tokens=4, max_tokens=64, seed=5)
        assert len(lengths) == 256
        assert min(lengths) >= 4 and max(lengths) <= 64

    def test_merge_sorts_and_rejects_duplicate_ids(self):
        a = bursty_arrivals(5, base_rate_rps=1e3, burst_rate_rps=1e4,
                            tokens=[4], seed=1, prefix="a")
        b = bursty_arrivals(5, base_rate_rps=1e3, burst_rate_rps=1e4,
                            tokens=[4], seed=2, prefix="b", priority_class=1)
        merged = merge_arrivals(a, b)
        assert len(merged) == 10
        order = [(r.arrival_us, r.request_id) for r in merged]
        assert order == sorted(order)
        with pytest.raises(ValueError, match="duplicate"):
            merge_arrivals(a, a)

    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (bursty_arrivals, {"base_rate_rps": 0.0, "burst_rate_rps": 1e3}),
            (bursty_arrivals, {"base_rate_rps": 1e3, "burst_rate_rps": 1e4,
                               "mean_dwell_us": 0.0}),
            (diurnal_arrivals, {"peak_rate_rps": 1e2, "trough_rate_rps": 1e3}),
            (diurnal_arrivals, {"peak_rate_rps": 1e3, "trough_rate_rps": 1e2,
                                "period_us": 0.0}),
        ],
    )
    def test_generator_validation(self, factory, kwargs):
        with pytest.raises(ValueError):
            factory(num_requests=4, tokens=[4], **kwargs)

    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            pareto_lengths(4, alpha=0.0)
        with pytest.raises(ValueError):
            pareto_lengths(4, min_tokens=8, max_tokens=4)

    @pytest.mark.slow
    def test_bursty_statistics(self):
        """MMPP sanity at scale: the realized mean rate sits between the two
        state rates, and windowed counts are over-dispersed relative to a
        plain Poisson stream (index of dispersion > 1)."""
        base, burst = 1_000.0, 20_000.0
        stream = bursty_arrivals(
            4000, base_rate_rps=base, burst_rate_rps=burst, tokens=[4],
            mean_dwell_us=20_000.0, seed=11,
        )
        span_s = stream[-1].arrival_us * 1e-6
        realized = len(stream) / span_s
        assert base < realized < burst
        window_us = 5_000.0
        counts = np.bincount(
            [int(r.arrival_us // window_us) for r in stream]
        )
        dispersion = counts.var() / counts.mean()
        assert dispersion > 1.5, f"MMPP counts look Poisson (D={dispersion:.2f})"

    @pytest.mark.slow
    def test_diurnal_statistics(self):
        """Thinning sanity: realized rate between trough and peak, and the
        peak half-period carries more arrivals than the trough half."""
        peak, trough, period = 20_000.0, 2_000.0, 100_000.0
        stream = diurnal_arrivals(
            4000, peak_rate_rps=peak, trough_rate_rps=trough, tokens=[4],
            period_us=period, seed=13,
        )
        realized = len(stream) / (stream[-1].arrival_us * 1e-6)
        assert trough < realized < peak
        # sin > 0 on [0, period/2): the high-rate half of each cycle.
        high_half = sum(1 for r in stream if (r.arrival_us % period) < period / 2)
        assert high_half > 0.6 * len(stream)

    @pytest.mark.slow
    def test_pareto_tail_is_heavy(self):
        """Smaller alpha = heavier tail: the alpha=1.1 draw pushes a larger
        fraction of mass to the clip ceiling than alpha=3.0."""
        heavy = pareto_lengths(4000, alpha=1.1, min_tokens=4, max_tokens=512, seed=3)
        light = pareto_lengths(4000, alpha=3.0, min_tokens=4, max_tokens=512, seed=3)
        frac_heavy = sum(1 for t in heavy if t >= 64) / len(heavy)
        frac_light = sum(1 for t in light if t >= 64) / len(light)
        assert frac_heavy > 2 * frac_light
        assert np.mean(heavy) > np.mean(light)


def two_tenant_overload():
    """The ISSUE's acceptance trace: seeded bursty two-tenant overload."""
    lengths = pareto_lengths(160, alpha=1.5, min_tokens=4, max_tokens=64, seed=3)
    low = bursty_arrivals(
        160, base_rate_rps=50_000.0, burst_rate_rps=2_000_000.0, tokens=lengths,
        seed=1, deadline_after_us=300.0, prefix="low", priority_class=0,
    )
    high = bursty_arrivals(
        40, base_rate_rps=20_000.0, burst_rate_rps=500_000.0, tokens=[8, 16],
        seed=2, deadline_after_us=300.0, prefix="high", priority_class=1,
    )
    return merge_arrivals(low, high)


class TestSimulateSLO:
    KWARGS = dict(max_queue_depth=24, shed_policy="drop-expired")

    def test_priority_beats_fcfs_for_the_high_class(self, operand):
        """The acceptance criterion: under the seeded bursty two-tenant
        overload, strict priority puts the high class's p99 strictly below
        FCFS's, and shed/violations concentrate in the low class."""
        trace = two_tenant_overload()
        fcfs = simulate_slo(operand, trace, **self.KWARGS)
        prio = simulate_slo(
            operand, trace,
            scheduling=SchedulingConfig(policy="priority", class_weights=(1, 4)),
            **self.KWARGS,
        )
        f, p = fcfs.per_class(), prio.per_class()
        assert p[1]["p99_latency_us"] < f[1]["p99_latency_us"]
        assert p[1]["violation_rate"] <= p[0]["violation_rate"]
        assert p[1]["shed_rate"] <= p[0]["shed_rate"]
        assert p[0]["shed"] + p[1]["shed"] > 0  # genuinely overloaded

    def test_replays_identically(self, operand):
        trace = two_tenant_overload()
        scheduling = SchedulingConfig(policy="priority", class_weights=(1, 4))
        runs = [
            simulate_slo(operand, trace, scheduling=scheduling, **self.KWARGS)
            for _ in range(2)
        ]
        assert runs[0].outcomes == runs[1].outcomes
        assert runs[0].latencies_us == runs[1].latencies_us
        assert runs[0].summary() == runs[1].summary()

    def test_weighted_fair_does_not_starve_the_low_class(self, operand):
        trace = two_tenant_overload()
        report = simulate_slo(
            operand, trace,
            scheduling=SchedulingConfig(policy="weighted-fair", class_weights=(1, 4)),
            **self.KWARGS,
        )
        per_class = report.per_class()
        assert per_class[0]["ok"] > 0
        assert per_class[1]["ok"] > 0

    def test_per_class_block_is_normalized(self, operand):
        """Configured-but-unused classes appear with zeroed counts and NaN
        percentiles — never silently missing, never fake 0.0 latencies."""
        reqs = [SimulatedRequest("only-0", tokens=8)]
        report = simulate_slo(
            operand, reqs,
            scheduling=SchedulingConfig(class_weights=(1, 1, 1)),
        )
        per_class = report.per_class()
        assert set(per_class) == {0, 1, 2}
        for cls in (1, 2):
            assert per_class[cls]["requests"] == 0
            assert per_class[cls]["ok"] == 0
            assert np.isnan(per_class[cls]["p99_latency_us"])
        assert per_class[0]["ok"] == 1
        assert not np.isnan(per_class[0]["p99_latency_us"])

    def test_brownout_sweep_degrades_monotonically_in_sheds(self, operand):
        trace = two_tenant_overload()
        reports = sweep_slo_overload(
            operand, trace, [0.5, 1.0, 2.0, 4.0],
            scheduling=SchedulingConfig(policy="priority", class_weights=(1, 4)),
            **self.KWARGS,
        )
        assert [r.load_factor for r in reports] == [0.5, 1.0, 2.0, 4.0]
        sheds = [r.shed_rate for r in reports]
        assert sheds == sorted(sheds)
        assert reports[-1].shed_rate > reports[0].shed_rate
        assert reports[0].availability > reports[-1].availability
        # Brownout keeps the high class protected at every load level.
        for report in reports:
            per_class = report.per_class()
            assert per_class[1]["shed_rate"] <= per_class[0]["shed_rate"]

    def test_per_class_queue_bounds_shed_only_that_class(self, operand):
        reqs = merge_arrivals(
            [SimulatedRequest(f"l-{i}", tokens=8, arrival_us=0.0) for i in range(6)],
            [
                SimulatedRequest(f"h-{i}", tokens=8, arrival_us=0.0, priority_class=1)
                for i in range(4)
            ],
        )
        report = simulate_slo(
            operand, reqs,
            scheduling=SchedulingConfig(
                policy="priority", class_queue_depths=(2, None)
            ),
        )
        per_class = report.per_class()
        assert per_class[0]["shed"] == 4  # 6 offered, bound 2
        assert per_class[1]["shed"] == 0

    def test_validation(self, operand):
        reqs = [SimulatedRequest("v-0", tokens=4)]
        with pytest.raises(ValueError, match="bucketing"):
            simulate_slo(operand, reqs, bucketing="diagonal")
        with pytest.raises(ValueError, match="shed_policy"):
            simulate_slo(operand, reqs, shed_policy="coin-flip")
        with pytest.raises(ValueError, match="load_factor"):
            simulate_slo(operand, reqs, load_factor=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            simulate_slo(operand, [])
        with pytest.raises(ValueError, match="load_factors"):
            sweep_slo_overload(operand, reqs, [])
