"""Serving-layer tests: batcher determinism, bucket boundaries, and the
single-request == batched-request equivalence guarantee.

The central property — batched execution of N compatible requests is
bit-identical to N sequential single-request calls — is asserted with
``np.array_equal`` (no tolerance): the engine canonicalises every request
to its bucket shape and the dispatcher's batched path is slab-bit-exact, so
equality must be exact.
"""

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.hardware.trace import ExecutionTrace
from repro.kernels.dispatch import KernelDispatcher, SpmmOperand
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask
from repro.serving import (
    AsyncWindowBatcher,
    Request,
    ServingEngine,
    ShapeBucketBatcher,
    SimulatedRequest,
    plan_async_closings,
    simulate_serving,
    sweep_batch_windows,
    uniform_arrivals,
)
from repro.serving.batcher import BucketKey


K_FEATURES = 128


@pytest.fixture
def vnm_weight(rng):
    dense = rng.normal(size=(64, K_FEATURES))
    pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=8)).astype(np.float32)
    return VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=8, strict=True)


@pytest.fixture
def bias(rng):
    return rng.normal(size=64).astype(np.float32)


def make_requests(rng, token_counts, prefix="req"):
    return [
        Request(f"{prefix}-{i:04d}", rng.normal(size=(t, K_FEATURES)).astype(np.float32))
        for i, t in enumerate(token_counts)
    ]


def fresh_engine(vnm_weight, bias, **kwargs):
    return ServingEngine(vnm_weight, bias=bias, dispatcher=KernelDispatcher(), **kwargs)


class TestShapeBucketBatcher:
    def test_token_bucket_rounds_up(self):
        batcher = ShapeBucketBatcher(token_buckets=(8, 32, 128))
        assert batcher.token_bucket(1) == 8
        assert batcher.token_bucket(8) == 8
        assert batcher.token_bucket(9) == 32
        assert batcher.token_bucket(32) == 32
        assert batcher.token_bucket(33) == 128

    def test_tokens_beyond_last_bucket_get_exact_bucket(self):
        batcher = ShapeBucketBatcher(token_buckets=(8, 32))
        assert batcher.token_bucket(33) == 33
        assert batcher.token_bucket(1000) == 1000

    def test_boundary_edge_cases_split_buckets(self, rng):
        """Requests at a boundary and one past it must land in different
        buckets (they cannot stack without changing the padded shape)."""
        batcher = ShapeBucketBatcher(token_buckets=(8, 32, 128))
        reqs = make_requests(rng, [32, 33])
        for r in reqs:
            batcher.submit(r)
        batches = batcher.drain()
        assert len(batches) == 2
        assert [b.key.token_bucket for b in batches] == [32, 128]

    def test_same_bucket_requests_stack(self, rng):
        batcher = ShapeBucketBatcher(token_buckets=(8, 32, 128))
        reqs = make_requests(rng, [9, 17, 32])
        for r in reqs:
            batcher.submit(r)
        batches = batcher.drain()
        assert len(batches) == 1
        assert batches[0].batch_size == 3
        assert batches[0].key == BucketKey(features=K_FEATURES, token_bucket=32)
        assert batcher.pending == 0

    def test_drain_order_is_arrival_invariant(self, rng):
        reqs = make_requests(rng, [5, 17, 17, 40, 70])
        orders = [reqs, list(reversed(reqs)), [reqs[2], reqs[0], reqs[4], reqs[1], reqs[3]]]
        drains = []
        for order in orders:
            batcher = ShapeBucketBatcher(token_buckets=(8, 32, 128))
            for r in order:
                batcher.submit(r)
            drains.append(
                [(b.key, [r.request_id for r in b.requests]) for b in batcher.drain()]
            )
        assert drains[0] == drains[1] == drains[2]

    def test_max_batch_size_chunks(self, rng):
        batcher = ShapeBucketBatcher(token_buckets=(16,), max_batch_size=2)
        for r in make_requests(rng, [4, 4, 4, 4, 4]):
            batcher.submit(r)
        sizes = [b.batch_size for b in batcher.drain()]
        assert sizes == [2, 2, 1]

    def test_stacked_rhs_pads_and_split_trims(self, rng):
        batcher = ShapeBucketBatcher(token_buckets=(8,))
        reqs = make_requests(rng, [3, 8])
        for r in reqs:
            batcher.submit(r)
        (batch,) = batcher.drain()
        rhs = batch.stacked_rhs()
        assert rhs.shape == (2, K_FEATURES, 8)
        assert np.array_equal(rhs[0, :, :3], reqs[0].activations.T)
        assert np.all(rhs[0, :, 3:] == 0.0)
        out = rhs.transpose(0, 2, 1) @ np.zeros((K_FEATURES, 7), dtype=np.float32)
        split = batch.split_output(out.transpose(0, 2, 1))
        assert split["req-0000"].shape == (3, 7)
        assert split["req-0001"].shape == (8, 7)

    def test_duplicate_request_id_rejected(self, rng):
        batcher = ShapeBucketBatcher()
        (req,) = make_requests(rng, [4])
        batcher.submit(req)
        with pytest.raises(ValueError):
            batcher.submit(req)
        batcher.drain()
        batcher.submit(req)  # a fresh window may reuse the id

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ShapeBucketBatcher(token_buckets=())
        with pytest.raises(ValueError):
            ShapeBucketBatcher(token_buckets=(8, 8))
        with pytest.raises(ValueError):
            ShapeBucketBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            ShapeBucketBatcher().token_bucket(0)
        with pytest.raises(ValueError):
            Request("r", np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(TypeError):
            ShapeBucketBatcher().submit("not a request")

    def test_non_finite_payload_rejected_at_submit_by_name(self, rng):
        """A NaN/Inf payload is refused at admission — naming the offending
        request — instead of poisoning its batchmates at execute time."""
        batcher = ShapeBucketBatcher()
        bad = rng.normal(size=(4, K_FEATURES)).astype(np.float32)
        bad[1, 3] = np.nan
        with pytest.raises(ValueError, match="bad-0042.*non-finite"):
            batcher.submit(Request("bad-0042", bad))
        assert batcher.pending == 0

    def test_submit_many_rejects_non_finite_atomically(self, rng):
        """One bad payload fails the whole submit_many before ANY member is
        queued, so a retry never trips the duplicate-id guard."""
        batcher = ShapeBucketBatcher()
        good_a, good_b = make_requests(rng, [4, 9], prefix="atomic")
        bad = Request("atomic-bad", np.full((4, K_FEATURES), np.inf, dtype=np.float32))
        with pytest.raises(ValueError, match="atomic-bad.*non-finite"):
            batcher.submit_many([good_a, bad, good_b])
        assert batcher.pending == 0
        batcher.submit_many([good_a, good_b])  # clean retry succeeds
        assert batcher.pending == 2

    def test_expire_due_removes_and_returns_expired(self, rng):
        batcher = ShapeBucketBatcher()
        live, doomed = make_requests(rng, [4, 4], prefix="exp")
        doomed = Request(doomed.request_id, doomed.activations, deadline_us=10.0)
        batcher.submit(live)
        batcher.submit(doomed)
        assert batcher.expire_due(5.0) == []  # deadline not yet passed
        expired = batcher.expire_due(11.0)
        assert [r.request_id for r in expired] == [doomed.request_id]
        assert batcher.pending == 1
        batcher.submit(Request(doomed.request_id, doomed.activations))  # id freed


class TestServingEngineEquivalence:
    def test_batched_equals_sequential_bitwise(self, rng, vnm_weight, bias):
        """The acceptance property: N compatible requests executed in one
        batched window == N sequential single-request calls, bit for bit."""
        reqs = make_requests(rng, [5, 17, 17, 17, 30, 32])
        batched = fresh_engine(vnm_weight, bias).serve(reqs)
        sequential = {}
        solo = fresh_engine(vnm_weight, bias)
        for r in reqs:
            sequential.update(solo.serve([r]))
        assert set(batched) == set(sequential)
        for rid in batched:
            assert np.array_equal(batched[rid], sequential[rid]), rid

    def test_outputs_match_direct_layer_math(self, rng, vnm_weight, bias):
        """Per-request outputs equal the dispatcher's direct 2-D execution
        of that request at its bucket shape, and are fp16-close to the
        dense reference."""
        reqs = make_requests(rng, [5, 17])
        results = fresh_engine(vnm_weight, bias).serve(reqs)
        dispatcher = KernelDispatcher()
        operand = SpmmOperand.from_vnm(vnm_weight)
        dense = vnm_weight.to_dense()
        batcher = ShapeBucketBatcher()
        for req in reqs:
            bucket = batcher.token_bucket(req.tokens)
            rhs = np.zeros((K_FEATURES, bucket), dtype=np.float32)
            rhs[:, : req.tokens] = req.activations.T
            direct = dispatcher.execute(operand, rhs, bias=bias)[:, : req.tokens].T
            assert np.array_equal(results[req.request_id], direct)
            reference = (
                np.asarray(dense, dtype=np.float16).astype(np.float32)
                @ np.asarray(req.activations.T, dtype=np.float16).astype(np.float32)
            ).T + bias
            assert np.allclose(results[req.request_id], reference, atol=5e-2, rtol=5e-3)

    def test_arrival_order_does_not_change_outputs(self, rng, vnm_weight, bias):
        reqs = make_requests(rng, [17, 5, 17, 30, 17, 64, 3])
        orderings = [reqs, list(reversed(reqs)), sorted(reqs, key=lambda r: r.tokens)]
        outputs = [fresh_engine(vnm_weight, bias).serve(order) for order in orderings]
        for result in outputs[1:]:
            assert set(result) == set(outputs[0])
            for rid in result:
                assert np.array_equal(result[rid], outputs[0][rid]), rid

    def test_single_vs_many_windows_equivalent(self, rng, vnm_weight, bias):
        """Splitting the same requests across several flush windows must not
        change any output."""
        reqs = make_requests(rng, [5, 17, 17, 30, 33, 64])
        one_window = fresh_engine(vnm_weight, bias).serve(reqs)
        engine = fresh_engine(vnm_weight, bias)
        two_windows = dict(engine.serve(reqs[:3]))
        two_windows.update(engine.serve(reqs[3:]))
        for rid in one_window:
            assert np.array_equal(one_window[rid], two_windows[rid]), rid

    def test_trace_records_batched_kernels(self, rng, vnm_weight, bias):
        engine = fresh_engine(vnm_weight, bias)
        engine.serve(make_requests(rng, [17, 17, 17, 60]))
        assert isinstance(engine.trace, ExecutionTrace)
        assert engine.total_requests == 4
        assert engine.total_batches == 2  # bucket 32 (x3) + bucket 64
        assert len(engine.trace.executions) == 2
        sizes = sorted(e.meta["batch_size"] for e in engine.trace.executions)
        assert sizes == [1, 3]
        assert engine.trace.total_time_us > 0
        stats = engine.stats()
        assert stats["requests"] == 4 and stats["batches"] == 2

    def test_feature_mismatch_rejected(self, rng, vnm_weight):
        engine = fresh_engine(vnm_weight, None)
        with pytest.raises(ValueError):
            engine.submit(Request("bad", rng.normal(size=(4, K_FEATURES + 1)).astype(np.float32)))

    def test_serve_is_atomic_on_invalid_request(self, rng, vnm_weight):
        """A rejected request must not strand earlier requests of the same
        serve() call in the queue (they would leak into a later window)."""
        engine = fresh_engine(vnm_weight, None)
        good = make_requests(rng, [4])[0]
        bad = Request("bad", rng.normal(size=(4, K_FEATURES + 1)).astype(np.float32))
        with pytest.raises(ValueError):
            engine.serve([good, bad])
        assert engine.batcher.pending == 0
        # The same requests can be resubmitted cleanly afterwards.
        results = engine.serve([good])
        assert set(results) == {good.request_id}
        # Duplicate ids inside one window are also rejected atomically.
        with pytest.raises(ValueError):
            engine.serve([good, good])
        assert engine.batcher.pending == 0

    def test_for_layer_constructor(self, rng, vnm_weight, bias):
        from repro.models.layers import SparseLinear

        layer = SparseLinear(
            sparse_weight=vnm_weight, bias=bias, dispatcher=KernelDispatcher()
        )
        engine = ServingEngine.for_layer(layer)
        (req,) = make_requests(rng, [6])
        out = engine.serve([req])[req.request_id]
        assert np.allclose(out, layer.forward(req.activations), atol=1e-6)

    def test_warm_prebuilds_plan(self, vnm_weight):
        assert ("spmm_plan", "auto") not in vnm_weight._memo
        fresh_engine(vnm_weight, None)
        assert ("spmm_plan", "auto") in vnm_weight._memo


class TestAsyncWindowPolicy:
    """The arrival-deadline policy: buckets close on wall-clock deadlines.

    The serving property under test is that the async policy is a pure
    *scheduling* change — per-request outputs are invariant to arrival
    order AND to the window size, bit for bit — and that its deadline
    semantics hold (a bucket closes exactly one window after its oldest
    arrival, never on a count trigger).
    """

    def _timed(self, reqs, arrivals):
        return [
            Request(r.request_id, r.activations, arrival_us=a)
            for r, a in zip(reqs, arrivals)
        ]

    def test_outputs_invariant_to_arrival_order_and_window(self, rng, vnm_weight, bias):
        """The async property test: every (window size, arrival order)
        combination produces the one-window outputs, bit for bit.

        Lengths cover the bucket boundaries: 32 (exact bucket), 33
        (bucket + 1, the first length of the next rung) and 200 (beyond
        the max ladder rung -> exact singleton bucket)."""
        lengths = [5, 17, 17, 32, 33, 200]
        reqs = make_requests(rng, lengths)
        baseline = fresh_engine(vnm_weight, bias).serve(reqs)

        arrival_patterns = [
            [0.0, 10.0, 20.0, 30.0, 40.0, 50.0],
            [50.0, 40.0, 30.0, 20.0, 10.0, 0.0],  # ids arrive in reverse
            [0.0, 0.0, 500.0, 500.0, 1000.0, 1000.0],  # bursts
        ]
        for window_us in (25.0, 300.0, 5000.0):
            for arrivals in arrival_patterns:
                engine = fresh_engine(
                    vnm_weight,
                    bias,
                    batcher=AsyncWindowBatcher(
                        token_buckets=(8, 32, 64), window_us=window_us
                    ),
                )
                results = engine.serve_arrivals(self._timed(reqs, arrivals))
                assert set(results) == set(baseline)
                for rid in baseline:
                    assert np.array_equal(results[rid], baseline[rid]), (
                        window_us,
                        arrivals,
                        rid,
                    )

    def test_drain_due_closes_only_expired_buckets(self, rng, vnm_weight):
        batcher = AsyncWindowBatcher(token_buckets=(8, 32), window_us=100.0)
        engine = fresh_engine(vnm_weight, None, batcher=batcher)
        early, late = self._timed(make_requests(rng, [5, 20]), [0.0, 90.0])
        engine.submit(early)
        engine.submit(late)
        assert batcher.due_keys(50.0) == []
        assert engine.poll(50.0) == {}

        # At t=100 only the bucket-8 window (opened at t=0) is due.
        results = engine.poll(100.0)
        assert set(results) == {early.request_id}
        assert batcher.pending == 1
        assert batcher.next_deadline_us() == pytest.approx(190.0)

        results = engine.poll(batcher.next_deadline_us())
        assert set(results) == {late.request_id}
        assert batcher.pending == 0
        assert batcher.next_deadline_us() is None

    def test_bucket_deadline_tracks_oldest_member(self, rng, vnm_weight):
        """A late same-bucket joiner must not extend the bucket's deadline."""
        batcher = AsyncWindowBatcher(token_buckets=(8, 32), window_us=100.0)
        engine = fresh_engine(vnm_weight, None, batcher=batcher)
        first, second = self._timed(make_requests(rng, [17, 20]), [10.0, 95.0])
        engine.submit(first)
        engine.submit(second)
        # Both share bucket 32; the window opened at t=10 and closes at 110.
        results = engine.poll(110.0)
        assert set(results) == {first.request_id, second.request_id}

    def test_window_ids_free_after_drain_due(self, rng, vnm_weight):
        batcher = AsyncWindowBatcher(token_buckets=(8,), window_us=10.0)
        engine = fresh_engine(vnm_weight, None, batcher=batcher)
        (req,) = make_requests(rng, [4])
        engine.submit(req)
        engine.poll(1000.0)
        engine.submit(req)  # a later window may reuse the drained id
        with pytest.raises(ValueError):
            engine.submit(req)  # but not while it is pending

    def test_poll_requires_deadline_aware_batcher(self, rng, vnm_weight):
        engine = fresh_engine(vnm_weight, None)
        with pytest.raises(TypeError):
            engine.poll(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncWindowBatcher(window_us=-1.0)
        exact = AsyncWindowBatcher.exact_length(window_us=5.0)
        assert exact.token_buckets == (1,)
        assert exact.window_us == 5.0

    def test_plan_async_closings_deadline_semantics(self):
        reqs = [
            SimulatedRequest("a", tokens=4, arrival_us=99.0),
            SimulatedRequest("b", tokens=4, arrival_us=150.0),
            SimulatedRequest("c", tokens=4, arrival_us=250.0),
            SimulatedRequest("d", tokens=40, arrival_us=0.0),
        ]
        closings = plan_async_closings(reqs, window_us=100.0, bucket_of=lambda r: r.tokens)
        as_ids = [(close, sorted(r.request_id for r in members)) for close, members in closings]
        # Bucket 40: closes at 0+100.  Bucket 4: window opens at 99, b (150)
        # joins before the 199 deadline, c (250) opens a fresh window.
        assert as_ids == [(100.0, ["d"]), (199.0, ["a", "b"]), (350.0, ["c"])]
        # Deadline property: every member arrives strictly within one window
        # of the window's first arrival, and each request appears once.
        for close, members in closings:
            first = min(m.arrival_us for m in members)
            assert close == pytest.approx(first + 100.0)
            assert all(m.arrival_us < close for m in members)
        assert sorted(m.request_id for _, ms in closings for m in ms) == ["a", "b", "c", "d"]

    def test_exact_deadline_arrival_opens_new_window(self, rng, vnm_weight):
        """Boundary semantics must match the live batcher: a request landing
        exactly at a window's closing deadline misses that window
        (serve_arrivals polls before it submits)."""
        sim = [
            SimulatedRequest("a", tokens=4, arrival_us=0.0),
            SimulatedRequest("b", tokens=4, arrival_us=100.0),  # exactly at a's deadline
        ]
        closings = plan_async_closings(sim, window_us=100.0, bucket_of=lambda r: r.tokens)
        as_ids = [(close, [r.request_id for r in members]) for close, members in closings]
        assert as_ids == [(100.0, ["a"]), (200.0, ["b"])]

        # The live engine agrees: two separate single-request closings.
        engine = fresh_engine(
            vnm_weight, None, batcher=AsyncWindowBatcher(token_buckets=(8,), window_us=100.0)
        )
        reqs = self._timed(make_requests(rng, [4, 4]), [0.0, 100.0])
        engine.serve_arrivals(reqs)
        assert engine.total_batches == 2

    def test_simulated_async_policy_order_invariant(self, vnm_weight):
        from repro.kernels.dispatch import SpmmOperand

        operand = SpmmOperand.from_vnm(vnm_weight)
        reqs = uniform_arrivals(24, rate_rps=20000, tokens=[9, 17, 33])
        shuffled = list(reversed(reqs))
        a = simulate_serving(operand, reqs, window_us=400.0, window_policy="async")
        b = simulate_serving(operand, shuffled, window_us=400.0, window_policy="async")
        assert a.summary() == b.summary()
        assert a.window_policy == "async"
        assert a.num_requests == 24
        # Queueing delay is bounded by the window under the async policy
        # (completion latency additionally includes GPU queueing, so compare
        # against the per-request baseline's service component).
        assert all(v >= 0 for v in a.latencies_us.values())
        with pytest.raises(ValueError):
            simulate_serving(operand, reqs, window_us=10.0, window_policy="nope")

    def test_sweep_accepts_async_policy(self, vnm_weight):
        from repro.kernels.dispatch import SpmmOperand

        operand = SpmmOperand.from_vnm(vnm_weight)
        reqs = uniform_arrivals(12, rate_rps=50000, tokens=[17])
        reports = sweep_batch_windows(
            operand, reqs, [0.0, 200.0], window_policy="async"
        )
        assert [r.window_policy for r in reports] == ["async", "async"]


class TestForLayerValidation:
    """Satellite fix: mismatched shapes fail loudly at intake, not deep in
    the kernel, and unsupported layer types are rejected up front."""

    def test_for_layer_rejects_dense_layer(self):
        from repro.models.layers import init_dense_linear

        with pytest.raises(TypeError, match="SpmmOperand"):
            ServingEngine.for_layer(init_dense_linear(8, 16))

    def test_bypassing_submit_still_fails_with_clear_error(self, rng, vnm_weight):
        """A request queued straight on the batcher (skipping submit's
        check) used to die inside the kernel with a broadcast error; now
        the flush rejects the micro-batch with a readable message."""
        engine = fresh_engine(vnm_weight, None)
        bad = Request("bad", rng.normal(size=(4, K_FEATURES + 1)).astype(np.float32))
        engine.batcher.submit(bad)
        with pytest.raises(ValueError, match="input width"):
            engine.flush()

    def test_for_layer_engine_validates_request_width(self, rng, vnm_weight, bias):
        from repro.models.layers import SparseLinear

        layer = SparseLinear(
            sparse_weight=vnm_weight, bias=bias, dispatcher=KernelDispatcher()
        )
        engine = ServingEngine.for_layer(layer)
        with pytest.raises(ValueError, match=f"operand K \\({K_FEATURES}\\)"):
            engine.submit(
                Request("bad", rng.normal(size=(4, K_FEATURES + 1)).astype(np.float32))
            )


class TestServingSimulation:
    @pytest.fixture
    def operand(self, vnm_weight):
        return SpmmOperand.from_vnm(vnm_weight)

    def test_report_accounting(self, operand):
        reqs = uniform_arrivals(40, rate_rps=100000, tokens=[17, 33])
        report = simulate_serving(operand, reqs, window_us=500.0)
        assert report.num_requests == 40
        assert report.num_batches <= 40
        assert len(report.latencies_us) == 40
        assert report.makespan_us > 0
        assert report.throughput_rps > 0
        assert report.kernel_time_us == pytest.approx(report.trace.total_time_us)
        summary = report.summary()
        assert summary["requests"] == 40

    def test_batching_amortises_kernel_time(self, operand):
        """More window -> fewer, bigger batches -> less total modelled
        kernel time (the sublinear-in-C amortisation batching exists for)."""
        reqs = uniform_arrivals(64, rate_rps=200000, tokens=[17])
        per_request = simulate_serving(operand, reqs, window_us=0.0)
        batched = simulate_serving(operand, reqs, window_us=2000.0)
        assert per_request.num_batches == 64
        assert batched.num_batches < 16
        assert batched.kernel_time_us < per_request.kernel_time_us
        assert batched.mean_batch_size > 4

    def test_saturated_throughput_improves_with_window(self, operand):
        """Under a backlog (all requests queued at t=0) batching must beat
        per-request dispatch on requests/s."""
        reqs = [SimulatedRequest(f"r{i:04d}", tokens=17, arrival_us=0.0) for i in range(128)]
        per_request = simulate_serving(operand, reqs, window_us=0.0)
        batched = simulate_serving(operand, reqs, window_us=50.0)
        assert batched.throughput_rps > per_request.throughput_rps

    def test_sweep_returns_one_report_per_window(self, operand):
        reqs = uniform_arrivals(20, rate_rps=50000, tokens=[9, 17])
        windows = [0.0, 200.0, 1000.0]
        reports = sweep_batch_windows(operand, reqs, windows)
        assert [r.window_us for r in reports] == windows

    def test_trace_meta_records_backend_and_batch(self, operand):
        reqs = uniform_arrivals(8, rate_rps=100000, tokens=[17])
        report = simulate_serving(operand, reqs, window_us=1000.0)
        for e in report.trace.executions:
            assert e.category == "gemm"
            assert e.meta["backend"] in {"spatha-plan", "cublas-dense"}
            assert e.meta["batch_size"] >= 1

    def test_validation(self, operand):
        with pytest.raises(ValueError):
            simulate_serving(operand, [], window_us=10.0)
        with pytest.raises(ValueError):
            SimulatedRequest("r", tokens=0)
        with pytest.raises(ValueError):
            uniform_arrivals(0, rate_rps=1.0, tokens=[4])
        with pytest.raises(ValueError):
            uniform_arrivals(4, rate_rps=0.0, tokens=[4])
        with pytest.raises(ValueError):
            uniform_arrivals(4, rate_rps=1.0, tokens=[])
