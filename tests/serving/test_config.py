"""ServingConfig API: one typed home for engine knobs, across all engines.

Pins the api_redesign contract: every serving engine constructs from a
:class:`ServingConfig` (directly or through :func:`create_engine`), the
legacy per-engine keywords still work but emit ``DeprecationWarning`` (and
conflict loudly with an explicit config), and all three engines report one
normalized ``stats()`` schema — the ``outcomes`` / ``admission`` /
``continuous`` / ``dispatch_health`` / ``sharding`` blocks are always
present, zeroed when the corresponding feature is unused.
"""

import warnings

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import SpmmOperand
from repro.models import TransformerEncoder, tiny_config
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask
from repro.serving import (
    AsyncWindowBatcher,
    ContinuousBatcher,
    DecodeRequest,
    DecoderServingEngine,
    ModelServingEngine,
    Request,
    SchedulingConfig,
    ServingConfig,
    ServingEngine,
    ShapeBucketBatcher,
    ShardedDispatcher,
    ShardingConfig,
    SimulatedRequest,
    create_engine,
    simulate_serving,
)

HIDDEN = 64


@pytest.fixture
def rng():
    return np.random.default_rng(0xBEEF)


@pytest.fixture
def operand(rng):
    dense = rng.normal(size=(64, 128))
    pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=8)).astype(np.float32)
    return SpmmOperand.from_vnm(
        VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=8, strict=True)
    )


def make_encoder(seed=0, num_layers=1):
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    sparsify_encoder(encoder, VNMSparsifier(n=2, m=4, v=16))
    return encoder


class TestServingConfig:
    def test_defaults_validate(self):
        config = ServingConfig()
        assert config.scheduling == "window"
        assert config.padding == "exact"
        assert not config.sharding.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduling": "sometimes"},
            {"padding": "diagonal"},
            {"window_us": -1.0},
            {"step_us": -1.0},
            {"max_batch_size": 0},
            {"block_size": 0},
            {"shed_policy": "coin-flip"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_sharding_validation(self):
        with pytest.raises(ValueError):
            ShardingConfig(tp_degree=0)
        with pytest.raises(ValueError):
            ShardingConfig(placement_policy="magic")
        with pytest.raises(TypeError):
            ServingConfig(sharding="2-way")

    def test_build_batcher_families(self):
        assert isinstance(ServingConfig().build_batcher(), ShapeBucketBatcher)
        assert isinstance(
            ServingConfig(scheduling="async").build_batcher(), AsyncWindowBatcher
        )
        assert isinstance(
            ServingConfig(scheduling="continuous").build_batcher(), ContinuousBatcher
        )
        # The decoder always gets a continuous batcher, whatever scheduling says.
        assert isinstance(ServingConfig().build_batcher(kind="decoder"), ContinuousBatcher)

    def test_admission_knobs_require_continuous(self):
        with pytest.raises(ValueError):
            ServingConfig(max_queue_depth=4).build_batcher()
        batcher = ServingConfig(scheduling="continuous", max_queue_depth=4).build_batcher()
        assert isinstance(batcher, ContinuousBatcher)

    def test_exact_padding_rejects_token_buckets(self):
        with pytest.raises(ValueError):
            ServingConfig(token_buckets=(8, 16)).build_batcher(kind="encoder")

    def test_scheduling_policy_type_checked(self):
        with pytest.raises(TypeError):
            ServingConfig(scheduling_policy="priority")

    def test_scheduling_policy_requires_continuous(self):
        active = SchedulingConfig(policy="priority", preemption=True)
        with pytest.raises(ValueError, match="continuous"):
            ServingConfig(scheduling_policy=active).build_batcher()
        with pytest.raises(ValueError, match="continuous"):
            ServingConfig(scheduling="async", scheduling_policy=active).build_batcher()
        batcher = ServingConfig(
            scheduling="continuous", scheduling_policy=active
        ).build_batcher()
        assert batcher.scheduling is active
        # The decoder's batcher is always continuous, so it may carry the
        # policy whatever `scheduling` says.
        decoder_batcher = ServingConfig(scheduling_policy=active).build_batcher(
            kind="decoder"
        )
        assert decoder_batcher.scheduling is active

    def test_inactive_default_scheduling_policy_builds_everywhere(self):
        # The FCFS default must never trip the continuous-only check.
        assert isinstance(ServingConfig().build_batcher(), ShapeBucketBatcher)
        assert isinstance(
            ServingConfig(scheduling="async").build_batcher(), AsyncWindowBatcher
        )

    def test_build_dispatcher_only_when_sharded(self):
        assert ServingConfig().build_dispatcher() is None
        dispatcher = ServingConfig(
            sharding=ShardingConfig(tp_degree=2)
        ).build_dispatcher()
        assert isinstance(dispatcher, ShardedDispatcher)
        assert dispatcher.num_shards == 2


class TestCreateEngine:
    def test_routes_by_target_and_kind(self, operand):
        encoder = make_encoder()
        assert isinstance(create_engine(operand), ServingEngine)
        assert isinstance(create_engine(encoder), ModelServingEngine)
        assert isinstance(create_engine(encoder, kind="decoder"), DecoderServingEngine)
        with pytest.raises(TypeError):
            create_engine(operand, kind="decoder")
        with pytest.raises(ValueError):
            create_engine(operand, kind="banana")

    def test_config_drives_all_three_engines(self, operand, rng):
        config = ServingConfig(name="cfg-driven", scheduling="continuous", step_us=10.0)
        op_engine = create_engine(operand, config=config)
        assert op_engine.name == "cfg-driven"
        assert isinstance(op_engine.batcher, ContinuousBatcher)
        model_engine = create_engine(make_encoder(), config=ServingConfig(padding="ladder"))
        assert model_engine.padding == "ladder"
        decoder = create_engine(
            make_encoder(),
            kind="decoder",
            config=ServingConfig(block_size=8, capacity_blocks=64),
        )
        assert decoder.kv.block_size == 8
        # The configured engines actually serve.
        x = rng.normal(size=(5, HIDDEN)).astype(np.float32)
        out = model_engine.serve([Request("r0", x)])
        assert out["r0"].shape == (5, HIDDEN)

    def test_explicit_kwargs_win_over_config(self, operand):
        batcher = ShapeBucketBatcher(max_batch_size=3)
        engine = create_engine(
            operand, config=ServingConfig(max_batch_size=64), batcher=batcher
        )
        assert engine.batcher is batcher


class TestDeprecatedKwargs:
    def test_model_engine_padding_warns_but_works(self, rng):
        with pytest.warns(DeprecationWarning, match="padding="):
            engine = ModelServingEngine(make_encoder(), padding="ladder")
        assert engine.padding == "ladder"
        x = rng.normal(size=(5, HIDDEN)).astype(np.float32)
        assert engine.serve([Request("r0", x)])["r0"].shape == (5, HIDDEN)

    @pytest.mark.parametrize(
        "kwarg,value", [("block_size", 8), ("capacity_blocks", 64), ("kv_budget_blocks", 32)]
    )
    def test_decoder_kv_kwargs_warn_but_work(self, kwarg, value):
        with pytest.warns(DeprecationWarning, match=f"{kwarg}="):
            engine = DecoderServingEngine(make_encoder(), **{kwarg: value})
        if kwarg == "block_size":
            assert engine.kv.block_size == value

    def test_deprecated_kwarg_conflicts_with_config(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="both config="):
                ModelServingEngine(
                    make_encoder(), padding="ladder", config=ServingConfig()
                )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="both config="):
                DecoderServingEngine(make_encoder(), block_size=8, config=ServingConfig())

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ModelServingEngine(make_encoder(), config=ServingConfig(padding="ladder"))
            DecoderServingEngine(make_encoder(), config=ServingConfig(block_size=8))


#: Normalized stats blocks every engine must expose, feature used or not.
NORMALIZED_BLOCKS = ("outcomes", "admission", "continuous", "dispatch_health", "sharding")
SHARDING_KEYS = {
    "tp_degree",
    "placement_policy",
    "per_shard_calls",
    "per_shard_modelled_us",
    "load_balance",
    "cut_bytes_per_token",
    "comm_time_us",
    "comm_events",
}


class TestNormalizedStatsSchema:
    def engines(self, operand):
        return [
            create_engine(operand),
            create_engine(make_encoder()),
            create_engine(make_encoder(), kind="decoder"),
        ]

    def test_blocks_present_in_all_engines(self, operand):
        for engine in self.engines(operand):
            stats = engine.stats()
            for block in NORMALIZED_BLOCKS:
                assert block in stats, f"{type(engine).__name__} lacks {block!r}"
                assert isinstance(stats[block], dict)

    def test_sharding_block_zeroed_when_unsharded(self, operand):
        for engine in self.engines(operand):
            block = engine.stats()["sharding"]
            assert set(block) == SHARDING_KEYS
            assert block["tp_degree"] == 1
            assert block["comm_time_us"] == 0.0
            assert block["comm_events"] == 0

    def test_sharding_block_live_when_sharded(self, rng):
        engine = create_engine(
            make_encoder(), config=ServingConfig(sharding=ShardingConfig(tp_degree=2))
        )
        x = rng.normal(size=(6, HIDDEN)).astype(np.float32)
        engine.serve([Request("r0", x)])
        block = engine.stats()["sharding"]
        assert set(block) == SHARDING_KEYS
        assert block["tp_degree"] == 2
        assert block["comm_time_us"] > 0.0

    def test_outcome_block_consistent(self, operand, rng):
        engine = create_engine(operand)
        engine.serve([Request("r0", rng.normal(size=(4, 128)).astype(np.float32))])
        outcomes = engine.stats()["outcomes"]
        assert outcomes["ok"] == 1

    def test_admission_block_carries_policy_and_per_class_everywhere(self, operand):
        """The SLO fields are part of the normalized schema: every engine's
        admission block has ``policy`` and ``per_class``, zeroed/None when
        the feature is unused (non-continuous batchers report policy=None
        with one zeroed class-0 block)."""
        zeroed = {"shed": 0, "expired": 0, "pending": 0}
        for engine in self.engines(operand):
            admission = engine.stats()["admission"]
            assert "policy" in admission
            assert "per_class" in admission
            if isinstance(engine.batcher, ContinuousBatcher):
                assert admission["policy"] == "fcfs"
            else:
                assert admission["policy"] is None
            assert admission["per_class"] == {0: zeroed}

    def test_per_class_block_reflects_configured_classes(self, rng):
        """A configured class shows up zeroed even before any traffic, and
        live counts land in the right class."""
        engine = create_engine(
            make_encoder(),
            kind="decoder",
            config=ServingConfig(
                max_queue_depth=1,
                scheduling_policy=SchedulingConfig(
                    policy="priority", class_weights=(1, 2)
                ),
            ),
        )
        admission = engine.stats()["admission"]
        assert admission["policy"] == "priority"
        zeroed = {"shed": 0, "expired": 0, "pending": 0}
        assert admission["per_class"] == {0: zeroed, 1: zeroed}
        # Overflow the depth-1 queue with class-1 traffic: the shed lands
        # in class 1's block, class 0 stays zeroed.
        for i in range(2):
            engine.submit(
                DecodeRequest(
                    f"pc-{i}",
                    rng.normal(size=(4, HIDDEN)).astype(np.float32),
                    new_tokens=2,
                    priority_class=1,
                )
            )
        admission = engine.stats()["admission"]
        assert admission["per_class"][0] == zeroed
        assert admission["per_class"][1] == {"shed": 1, "expired": 0, "pending": 1}


class TestConfigDrivenSimulation:
    def test_config_selects_policy_and_sharding(self, operand, rng):
        requests = [
            SimulatedRequest(f"s{i}", tokens=8, arrival_us=20.0 * i) for i in range(6)
        ]
        report = simulate_serving(
            operand,
            requests,
            window_us=100.0,
            config=ServingConfig(scheduling="continuous", padding="exact"),
        )
        assert report.window_policy == "continuous"
        assert report.bucketing == "exact"
        sharded = simulate_serving(
            operand,
            requests,
            window_us=100.0,
            config=ServingConfig(sharding=ShardingConfig(tp_degree=2)),
        )
        assert sharded.num_requests == 6

    def test_explicit_args_win(self, operand):
        requests = [SimulatedRequest("s0", tokens=8, arrival_us=0.0)]
        report = simulate_serving(
            operand,
            requests,
            window_us=0.0,
            window_policy="fixed",
            config=ServingConfig(scheduling="continuous"),
        )
        assert report.window_policy == "fixed"

    def test_serve_continuous_step_from_config(self, rng):
        engine = create_engine(
            make_encoder(),
            config=ServingConfig(scheduling="continuous", step_us=50.0),
        )
        x = rng.normal(size=(4, HIDDEN)).astype(np.float32)
        results = engine.serve_continuous([Request("r0", x)])
        assert "r0" in results
