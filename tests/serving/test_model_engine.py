"""Golden end-to-end correctness matrix for model-level serving.

The acceptance property of the serving stack, one level up from the
single-operator tests: batched encoder serving through
:class:`~repro.serving.model_engine.ModelServingEngine` is **bit-for-bit**
equal to sequential per-request ``TransformerEncoder.forward`` calls, for
every cell of a (V:N:M pattern x num_layers x ragged request lengths x
backend) grid — in *both* batching modes: exact-length bucketing and the
padded bucket ladder (``padding="ladder"``), whose cells additionally pin
that ragged lengths consolidate into fewer, fuller buckets than
exact-length bucketing would produce.  The full matrices are marked
``slow``; smoke subsets stay in tier-1 so every CI run still crosses all
grid axes.

Also here: the plan-cache hit/miss accounting (cross-request reuse is the
point of the engine-lifetime registry) and the dispatcher cache-isolation
regression — two engines with injected dispatchers must never share
memoized dispatch signatures.
"""

import numpy as np
import pytest

from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import (
    CublasDenseBackend,
    KernelDispatcher,
    SpathaPlanBackend,
    default_dispatcher,
)
from repro.models import TransformerEncoder, tiny_config
from repro.serving import (
    AsyncWindowBatcher,
    ContinuousBatcher,
    ModelServingEngine,
    Request,
)

HIDDEN = 64


def make_encoder(pattern, num_layers, seed=0):
    """A tiny sparsified encoder (all six projections per layer V:N:M)."""
    v, n, m = pattern
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    replaced = sparsify_encoder(encoder, VNMSparsifier(n=n, m=m, v=v))
    assert len(replaced) == 6 * num_layers
    return encoder


def make_requests(rng, lengths, prefix="req"):
    return [
        Request(f"{prefix}-{i:04d}", rng.normal(size=(t, HIDDEN)).astype(np.float32))
        for i, t in enumerate(lengths)
    ]


def backend_dispatcher(backend):
    """A dispatcher restricted to one backend (or the full auto registry)."""
    if backend == "auto":
        return KernelDispatcher()
    if backend == "spatha-plan":
        return KernelDispatcher(backends=[SpathaPlanBackend()])
    if backend == "cublas-dense":
        return KernelDispatcher(backends=[CublasDenseBackend()])
    raise ValueError(backend)


def assert_golden_cell(pattern, num_layers, lengths, backend, rng):
    """One grid cell: batched serving == sequential forward, bit for bit."""
    encoder = make_encoder(pattern, num_layers)
    engine = ModelServingEngine(
        encoder, dispatcher=backend_dispatcher(backend), name=f"golden-{backend}"
    )
    requests = make_requests(rng, lengths)
    batched = engine.serve(requests)

    assert set(batched) == {r.request_id for r in requests}
    for request in requests:
        # The engine injected its dispatcher into the encoder, so this IS
        # the sequential per-request execution of the same configuration.
        sequential = encoder.forward(request.activations[None])[0]
        assert batched[request.request_id].shape == (request.tokens, HIDDEN)
        assert np.array_equal(batched[request.request_id], sequential), (
            f"cell (pattern={pattern}, layers={num_layers}, backend={backend}) "
            f"diverged on {request.request_id} (tokens={request.tokens})"
        )

    # Cross-request plan reuse: the warmed registry answers every lookup.
    stats = engine.stats()
    assert stats["plan_cache"]["size"] == 6 * num_layers
    assert stats["plan_cache"]["misses"] == 0
    assert stats["plan_cache"]["hits"] == stats["batches"] * 6 * num_layers
    return engine


PATTERNS = [(16, 2, 8), (8, 2, 4)]
LAYER_COUNTS = [1, 2]
LENGTH_SETS = [[3, 7, 7, 12], [9, 17, 17, 17, 33]]
BACKENDS = ["auto", "cublas-dense"]

FULL_GRID = [
    (p, l, s, b)
    for p in PATTERNS
    for l in LAYER_COUNTS
    for s in LENGTH_SETS
    for b in BACKENDS
]

#: Tier-1 smoke subset: four cells that still cross every axis (both
#: patterns, both layer counts, both length sets, both backends).
SMOKE_GRID = [
    ((16, 2, 8), 1, [3, 7, 7, 12], "auto"),
    ((8, 2, 4), 2, [9, 17, 17, 17, 33], "auto"),
    ((16, 2, 8), 2, [9, 17, 17, 17, 33], "cublas-dense"),
    ((8, 2, 4), 1, [3, 7, 7, 12], "cublas-dense"),
]

#: Ragged length sets for the padded-ladder cells: every set crosses at
#: least one rung boundary of the (8, 16, ...) ladder, and the first
#: includes the single-token (GEMV-shaped) edge case.
PADDED_LENGTH_SETS = [
    [1, 3, 5, 7, 8],  # one 8-rung bucket
    [3, 7, 9, 12, 16, 17],  # 8-, 16- and 32-rung buckets
    [8, 9, 16, 17, 33],  # every boundary: rung, rung+1, next rung
]

PADDED_FULL_GRID = [
    (p, l, s, b)
    for p in PATTERNS
    for l in LAYER_COUNTS
    for s in PADDED_LENGTH_SETS
    for b in BACKENDS
]

#: Tier-1 padded smoke subset, crossing every axis like SMOKE_GRID does.
PADDED_SMOKE_GRID = [
    ((16, 2, 8), 1, [1, 3, 5, 7, 8], "auto"),
    ((8, 2, 4), 2, [3, 7, 9, 12, 16, 17], "cublas-dense"),
    ((16, 2, 8), 2, [8, 9, 16, 17, 33], "cublas-dense"),
    ((8, 2, 4), 1, [8, 9, 16, 17, 33], "auto"),
]


def assert_padded_golden_cell(pattern, num_layers, lengths, backend, rng):
    """One padded-ladder grid cell: valid rows == standalone forward, bit
    for bit, while ragged lengths consolidate into fewer, fuller buckets."""
    encoder = make_encoder(pattern, num_layers)
    engine = ModelServingEngine(
        encoder,
        dispatcher=backend_dispatcher(backend),
        padding="ladder",
        name=f"golden-padded-{backend}",
    )
    requests = make_requests(rng, lengths)
    batched = engine.serve(requests)

    assert set(batched) == {r.request_id for r in requests}
    for request in requests:
        sequential = encoder.forward(request.activations[None])[0]
        assert batched[request.request_id].shape == (request.tokens, HIDDEN)
        assert np.array_equal(batched[request.request_id], sequential), (
            f"padded cell (pattern={pattern}, layers={num_layers}, backend={backend}) "
            f"diverged on {request.request_id} (tokens={request.tokens})"
        )

    stats = engine.stats()
    # The consolidation the ladder exists for: strictly fewer micro-batches
    # than exact-length bucketing (one per distinct length) would produce.
    exact_buckets = len(set(lengths))
    assert stats["batches"] < exact_buckets
    padding = stats["padding"]
    assert padding["mode"] == "ladder"
    assert padding["valid_tokens"] == sum(lengths)
    assert padding["bucket_tokens"] >= padding["valid_tokens"]
    assert 0.0 < padding["fill"] <= 1.0
    # Plan-cache accounting carries over to the padded path unchanged.
    assert stats["plan_cache"]["misses"] == 0
    assert stats["plan_cache"]["hits"] == stats["batches"] * 6 * num_layers
    return engine


#: Arrival interleavings for the continuous cells: each pattern stresses a
#: different admission order (burst, trickle, ids reversed in time, clumps
#: straddling step boundaries).  Lengths index into the cell's length set.
def arrival_interleavings(n):
    return [
        [0.0] * n,
        [i * 60.0 for i in range(n)],
        [(n - 1 - i) * 60.0 for i in range(n)],
        [(i % 2) * 700.0 for i in range(n)],
    ]


CONTINUOUS_FULL_GRID = [
    (p, s, b, a, step_us)
    for p in PATTERNS
    for s in PADDED_LENGTH_SETS
    for b in BACKENDS
    for a in range(4)
    for step_us in (0.0, 100.0)
]

#: Tier-1 continuous smoke subset: crosses both patterns, all three length
#: sets, both backends, all four interleavings and both step cadences.
CONTINUOUS_SMOKE_GRID = [
    ((16, 2, 8), [1, 3, 5, 7, 8], "auto", 0, 0.0),
    ((8, 2, 4), [3, 7, 9, 12, 16, 17], "cublas-dense", 1, 100.0),
    ((16, 2, 8), [8, 9, 16, 17, 33], "cublas-dense", 2, 0.0),
    ((8, 2, 4), [8, 9, 16, 17, 33], "auto", 3, 100.0),
]


def assert_continuous_golden_cell(pattern, lengths, backend, arrival_idx, step_us, rng):
    """One continuous grid cell: serving through the step loop under the
    given arrival interleaving and cadence == sequential forward, bit for
    bit, in both exact and ladder modes."""
    arrivals = arrival_interleavings(len(lengths))[arrival_idx]
    for padding in ("exact", "ladder"):
        encoder = make_encoder(pattern, 1)
        batcher = (
            ContinuousBatcher.ladder()
            if padding == "ladder"
            else ContinuousBatcher.exact_length()
        )
        engine = ModelServingEngine(
            encoder,
            dispatcher=backend_dispatcher(backend),
            padding=padding,
            batcher=batcher,
            name=f"golden-continuous-{padding}-{backend}",
        )
        requests = [
            Request(r.request_id, r.activations, arrival_us=a)
            for r, a in zip(make_requests(rng, lengths), arrivals)
        ]
        results = engine.serve_continuous(requests, step_us=step_us)
        assert set(results) == {r.request_id for r in requests}
        for request in requests:
            sequential = encoder.forward(request.activations[None])[0]
            assert np.array_equal(results[request.request_id], sequential), (
                f"continuous cell (pattern={pattern}, backend={backend}, "
                f"arrivals={arrival_idx}, step_us={step_us}, padding={padding}) "
                f"diverged on {request.request_id} (tokens={request.tokens})"
            )
        # Every request completed exactly once, with coherent metadata.
        assert set(engine.completions) == set(results)
        assert engine.stats()["continuous"]["completions"] == len(requests)


class TestGoldenMatrix:
    @pytest.mark.parametrize("pattern,num_layers,lengths,backend", SMOKE_GRID)
    def test_smoke_cells(self, rng, pattern, num_layers, lengths, backend):
        assert_golden_cell(pattern, num_layers, lengths, backend, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("pattern,num_layers,lengths,backend", FULL_GRID)
    def test_full_matrix(self, rng, pattern, num_layers, lengths, backend):
        assert_golden_cell(pattern, num_layers, lengths, backend, rng)

    @pytest.mark.parametrize("pattern,num_layers,lengths,backend", PADDED_SMOKE_GRID)
    def test_padded_smoke_cells(self, rng, pattern, num_layers, lengths, backend):
        assert_padded_golden_cell(pattern, num_layers, lengths, backend, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("pattern,num_layers,lengths,backend", PADDED_FULL_GRID)
    def test_padded_full_matrix(self, rng, pattern, num_layers, lengths, backend):
        assert_padded_golden_cell(pattern, num_layers, lengths, backend, rng)

    @pytest.mark.parametrize(
        "pattern,lengths,backend,arrival_idx,step_us", CONTINUOUS_SMOKE_GRID
    )
    def test_continuous_smoke_cells(self, rng, pattern, lengths, backend, arrival_idx, step_us):
        assert_continuous_golden_cell(pattern, lengths, backend, arrival_idx, step_us, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "pattern,lengths,backend,arrival_idx,step_us", CONTINUOUS_FULL_GRID
    )
    def test_continuous_full_matrix(self, rng, pattern, lengths, backend, arrival_idx, step_us):
        assert_continuous_golden_cell(pattern, lengths, backend, arrival_idx, step_us, rng)

    def test_padded_and_exact_engines_agree_bitwise(self, rng):
        """The two bit-exact policies must agree with each other, not just
        with the standalone forward (same weights, different encoders so
        each engine owns its routing)."""
        lengths = [1, 5, 7, 9, 9, 12, 17]
        requests = make_requests(rng, lengths)
        exact = ModelServingEngine(make_encoder((16, 2, 8), 1), name="exact")
        padded = ModelServingEngine(make_encoder((16, 2, 8), 1), padding="ladder", name="padded")
        exact_out = exact.serve(requests)
        padded_out = padded.serve(requests)
        for rid in exact_out:
            assert np.array_equal(exact_out[rid], padded_out[rid]), rid
        assert padded.total_batches < exact.total_batches

    def test_padded_async_windows_preserve_bits(self, rng):
        """Arrival-deadline windows compose with the padded ladder: timing
        changes which rung-buckets close together, never the numbers."""
        encoder = make_encoder((16, 2, 8), 1)
        requests = make_requests(rng, [1, 5, 7, 9, 12, 17])
        one_window = ModelServingEngine(encoder, padding="ladder").serve(requests)
        for window_us in (25.0, 400.0):
            engine = ModelServingEngine(
                encoder,
                padding="ladder",
                batcher=AsyncWindowBatcher.ladder(window_us=window_us),
            )
            timed = [
                Request(r.request_id, r.activations, arrival_us=i * 50.0)
                for i, r in enumerate(requests)
            ]
            results = engine.serve_arrivals(timed)
            for rid in one_window:
                assert np.array_equal(results[rid], one_window[rid]), (window_us, rid)

    def test_arrival_order_invariance(self, rng):
        encoder = make_encoder((16, 2, 8), 1)
        requests = make_requests(rng, [5, 9, 9, 17, 9, 5])
        baseline = ModelServingEngine(encoder).serve(requests)
        shuffled = ModelServingEngine(encoder).serve(list(reversed(requests)))
        for rid in baseline:
            assert np.array_equal(baseline[rid], shuffled[rid]), rid

    def test_async_windows_preserve_bits(self, rng):
        """Arrival-deadline window closing changes *when* requests run,
        never their numbers."""
        encoder = make_encoder((16, 2, 8), 1)
        requests = make_requests(rng, [5, 9, 9, 17, 9, 5])
        one_window = ModelServingEngine(encoder).serve(requests)
        for window_us in (25.0, 400.0):
            engine = ModelServingEngine(
                encoder, batcher=AsyncWindowBatcher.exact_length(window_us=window_us)
            )
            timed = [
                Request(r.request_id, r.activations, arrival_us=i * 50.0)
                for i, r in enumerate(requests)
            ]
            results = engine.serve_arrivals(timed)
            for rid in one_window:
                assert np.array_equal(results[rid], one_window[rid]), (window_us, rid)


class TestPlanCache:
    def test_cold_engine_counts_misses_then_hits(self, rng):
        encoder = make_encoder((16, 2, 8), 2)
        engine = ModelServingEngine(encoder, warm=False)
        assert engine.stats()["plan_cache"]["size"] == 0
        engine.serve(make_requests(rng, [9, 9]))  # one exact-length batch
        stats = engine.stats()
        assert stats["plan_cache"]["misses"] == 12  # built on first batch
        assert stats["plan_cache"]["hits"] == 0
        engine.serve(make_requests(rng, [9, 9], prefix="again"))
        stats = engine.stats()
        assert stats["plan_cache"]["misses"] == 12  # never rebuilt
        assert stats["plan_cache"]["hits"] == 12

    def test_warmed_engine_never_misses(self, rng):
        engine = ModelServingEngine(make_encoder((8, 2, 4), 1), warm_buckets=(9,))
        for window in range(3):
            engine.serve(make_requests(rng, [9, 9, 9], prefix=f"w{window}"))
        stats = engine.stats()
        assert stats["plan_cache"]["misses"] == 0
        assert stats["plan_cache"]["hits"] == 3 * 6

    def test_registry_plans_are_the_execution_path_plans(self):
        """The registry must not shadow the kernel path: its entries are
        the very objects SpmmPlan.for_matrix memoizes on each weight (what
        the dispatcher's spatha backend executes through), so a registry
        hit is genuine cross-request plan reuse."""
        from repro.kernels.spatha import SpmmPlan

        engine = ModelServingEngine(make_encoder((16, 2, 8), 1))
        for name, layer in engine.encoder.named_sparse_layers():
            assert engine.plans[name] is SpmmPlan.for_matrix(layer.sparse_weight)

    def test_warm_buckets_prepay_dispatch_ranking(self):
        engine = ModelServingEngine(make_encoder((16, 2, 8), 1), warm_buckets=(9, 17))
        warm_stats = engine.dispatcher.cache_stats()
        assert warm_stats["size"] > 0
        # Every (operand, bucket) pair was visited at warm time; same-shape
        # projections (q/k/v/o share 64x64 at one sparsity) legitimately
        # alias to one signature, so later visits are already cache hits.
        assert warm_stats["hits"] + warm_stats["misses"] == 6 * 2
        assert warm_stats["misses"] == warm_stats["size"]


class TestDispatcherIsolation:
    def test_engines_do_not_share_memoized_signatures(self, rng):
        """Regression: two engines with injected dispatchers must keep
        fully independent decision caches (and leave the process-wide
        default dispatcher untouched)."""
        default_before = default_dispatcher().cache_size()
        dispatcher_a = KernelDispatcher(name="engine-a")
        dispatcher_b = KernelDispatcher(name="engine-b")
        engine_a = ModelServingEngine(make_encoder((16, 2, 8), 1), dispatcher=dispatcher_a)
        engine_b = ModelServingEngine(make_encoder((16, 2, 8), 1), dispatcher=dispatcher_b)

        engine_a.serve(make_requests(rng, [9, 9, 17]))
        assert dispatcher_a.cache_size() > 0
        assert dispatcher_b.cache_size() == 0  # b never served traffic
        assert dispatcher_b.cache_misses == 0

        size_a = dispatcher_a.cache_size()
        engine_b.serve(make_requests(rng, [9, 9, 17]))
        assert dispatcher_a.cache_size() == size_a  # b's traffic never hit a
        dispatcher_b.clear_cache()
        assert dispatcher_a.cache_size() == size_a
        assert default_dispatcher().cache_size() == default_before

    def test_injected_dispatcher_routes_every_sparse_layer(self):
        dispatcher = KernelDispatcher(name="routed")
        engine = ModelServingEngine(make_encoder((16, 2, 8), 2), dispatcher=dispatcher)
        for _, layer in engine.encoder.named_sparse_layers():
            assert layer.dispatcher is dispatcher

    def test_padding_batcher_rejected_not_silently_wrong(self, rng):
        """Regression: a padding batcher (the single-operator bucket
        ladder) must be refused — zero-padded key tokens enter attention's
        softmax denominators, so the engine would return silently wrong
        numbers and trim the evidence."""
        from repro.serving import ShapeBucketBatcher

        engine = ModelServingEngine(
            make_encoder((16, 2, 8), 1), batcher=ShapeBucketBatcher()
        )
        with pytest.raises(ValueError, match="exact-length"):
            engine.serve(make_requests(rng, [5]))  # 5 pads to bucket 8

    def test_layers_sparsified_after_construction_fail_loudly(self, rng):
        """Regression: the routing guard must see the encoder's *live*
        layers — a projection sparsified after the engine was built carries
        no engine dispatcher and must not silently execute through the
        process-wide default."""
        cfg = tiny_config(hidden_size=HIDDEN, num_layers=1, num_heads=4, intermediate_size=128)
        encoder = TransformerEncoder.init(cfg, seed=5)
        sparsify_encoder(
            encoder,
            VNMSparsifier(n=2, m=8, v=16),
            weight_filter=lambda name: name.split(".", 3)[-1].startswith("ffn."),
        )
        engine = ModelServingEngine(encoder)
        engine.serve(make_requests(rng, [9, 9]))
        default_size = default_dispatcher().cache_size()
        sparsify_encoder(  # the attention projections join later
            encoder,
            VNMSparsifier(n=2, m=8, v=16),
            weight_filter=lambda name: name.split(".", 3)[-1].startswith("attention."),
        )
        with pytest.raises(RuntimeError, match="no longer routed"):
            engine.serve(make_requests(rng, [9, 9], prefix="late"))
        assert default_dispatcher().cache_size() == default_size

    def test_displaced_engine_fails_loudly_not_silently(self, rng):
        """Regression: a second engine on the SAME encoder re-routes the
        sparse layers; the displaced engine must refuse to serve (it would
        otherwise execute through — and populate the caches of — a
        dispatcher its trace does not report)."""
        encoder = make_encoder((16, 2, 8), 1)
        engine_a = ModelServingEngine(encoder, name="engine-a")
        engine_a.serve(make_requests(rng, [9, 9]))  # fine while it owns routing
        engine_b = ModelServingEngine(encoder, name="engine-b")
        with pytest.raises(RuntimeError, match="no longer routed"):
            engine_a.serve(make_requests(rng, [9, 9], prefix="late"))
        # The new owner serves normally.
        engine_b.serve(make_requests(rng, [9, 9], prefix="fresh"))


class TestModelEngineApi:
    def test_rejects_non_encoder(self):
        with pytest.raises(TypeError):
            ModelServingEngine(object())

    def test_rejects_unknown_padding_mode(self):
        with pytest.raises(ValueError, match="padding"):
            ModelServingEngine(make_encoder((16, 2, 8), 1), padding="zeros")

    def test_feature_mismatch_rejected_with_clear_error(self, rng):
        engine = ModelServingEngine(make_encoder((16, 2, 8), 1))
        bad = Request("bad", rng.normal(size=(4, HIDDEN + 1)).astype(np.float32))
        with pytest.raises(ValueError, match="hidden size"):
            engine.submit(bad)
        good = make_requests(rng, [4])[0]
        with pytest.raises(ValueError, match="hidden size"):
            engine.serve([good, bad])
        assert engine.batcher.pending == 0  # atomic intake

    def test_padded_path_shares_intake_validation(self, rng):
        """The padded mode reuses _validate: a mismatched request fails at
        intake with the same message naming the request id and the
        expected hidden width, and leaves nothing queued."""
        engine = ModelServingEngine(make_encoder((16, 2, 8), 1), padding="ladder")
        bad = Request("bad-padded", rng.normal(size=(4, HIDDEN + 1)).astype(np.float32))
        with pytest.raises(ValueError, match=r"'bad-padded'.*\b64\b"):
            engine.submit(bad)
        good = make_requests(rng, [4])[0]
        with pytest.raises(ValueError, match=r"'bad-padded'.*\b64\b"):
            engine.serve([good, bad])
        assert engine.batcher.pending == 0  # atomic intake in padded mode too

    def test_per_layer_trace_aggregation(self, rng):
        engine = ModelServingEngine(make_encoder((16, 2, 8), 2))
        engine.serve(make_requests(rng, [9, 9, 17]))  # two exact-length batches
        assert engine.total_batches == 2
        # One modelled execution per projection per micro-batch.
        assert len(engine.trace.executions) == 2 * 12
        per_layer = engine.per_layer_times()
        assert set(per_layer) == {name for name, _ in engine.encoder.named_linear_layers()}
        assert all(t > 0 for t in per_layer.values())
        backends = {e.meta["backend"] for e in engine.trace.executions}
        assert backends <= {"spatha-plan", "cublas-dense", "sputnik-csr", "cusparse-blocked-ell"}
        assert engine.stats()["modelled_kernel_time_us"] == pytest.approx(
            sum(per_layer.values())
        )

    def test_layer_hook_sees_every_block(self, rng):
        encoder = make_encoder((16, 2, 8), 2)
        hidden = rng.normal(size=(3, 9, HIDDEN)).astype(np.float32)
        seen = []
        out = encoder.forward(hidden, layer_hook=lambda i, h: seen.append((i, h.shape)))
        assert seen == [(0, (3, 9, HIDDEN)), (1, (3, 9, HIDDEN))]
        assert out.shape == (3, 9, HIDDEN)

    def test_mixed_dense_sparse_encoder_stays_bit_exact(self, rng):
        """Only the FFN sparsified: the attention projections run the dense
        slab-exact path, and batched == sequential must still hold."""
        cfg = tiny_config(hidden_size=HIDDEN, num_layers=2, num_heads=4, intermediate_size=128)
        encoder = TransformerEncoder.init(cfg, seed=3)
        sparsify_encoder(
            encoder,
            VNMSparsifier(n=2, m=8, v=16),
            weight_filter=lambda name: name.split(".", 3)[-1].startswith("ffn."),
        )
        assert encoder.count_sparse_layers() == 4
        engine = ModelServingEngine(encoder)
        requests = make_requests(rng, [5, 9, 9, 17])
        batched = engine.serve(requests)
        for request in requests:
            sequential = encoder.forward(request.activations[None])[0]
            assert np.array_equal(batched[request.request_id], sequential)
