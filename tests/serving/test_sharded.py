"""Golden correctness matrix for sharded multi-device serving.

The acceptance property of the sharding tentpole: serving an encoder split
across N simulated devices through :class:`ShardedDispatcher` is
**bit-for-bit** equal to single-device ``TransformerEncoder.forward`` on a
twin encoder, for every cell of a (shards x V:N:M pattern x padding x
backend) grid — sharding changes where each projection executes and what
communication is modelled, never the arithmetic.  Smoke subsets crossing
every axis stay in tier-1; the full matrix is marked ``slow``.  One
continuous-batching cell pins that sharding composes with the step loop,
and a decode cell pins composition with the paged-KV decoder.
"""

import numpy as np
import pytest

from repro.hardware.spec import NVLINK, PCIE4
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import CublasDenseBackend, KernelDispatcher
from repro.models import TransformerEncoder, tiny_config
from repro.serving import (
    ContinuousBatcher,
    DecodeRequest,
    DecoderServingEngine,
    ModelServingEngine,
    Request,
    ServingConfig,
    ShardedDispatcher,
    ShardingConfig,
)

HIDDEN = 64


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


def make_encoder(pattern, num_layers, seed=0):
    v, n, m = pattern
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    sparsify_encoder(encoder, VNMSparsifier(n=n, m=m, v=v))
    return encoder


def make_requests(rng, lengths, prefix="req"):
    return [
        Request(f"{prefix}-{i:04d}", rng.normal(size=(t, HIDDEN)).astype(np.float32))
        for i, t in enumerate(lengths)
    ]


def sharded_dispatcher(num_shards, backend, policy="min_cut"):
    kwargs = {}
    if backend == "cublas-dense":
        kwargs["backends"] = [CublasDenseBackend()]
    return ShardedDispatcher(num_shards=num_shards, placement_policy=policy, **kwargs)


def assert_sharded_golden_cell(num_shards, pattern, padding, backend, rng, policy="min_cut"):
    """One grid cell: sharded serving == single-device twin, bit for bit."""
    lengths = [3, 7, 7, 12] if padding == "exact" else [3, 7, 9, 12, 16, 17]
    # The twin runs unsharded on its own single-device dispatcher.
    twin = make_encoder(pattern, 2)
    twin.set_dispatcher(
        KernelDispatcher(backends=[CublasDenseBackend()])
        if backend == "cublas-dense"
        else KernelDispatcher()
    )
    encoder = make_encoder(pattern, 2)
    engine = ModelServingEngine(
        encoder,
        dispatcher=sharded_dispatcher(num_shards, backend, policy),
        config=ServingConfig(padding=padding, name=f"sharded-{num_shards}-{backend}"),
    )
    requests = make_requests(rng, lengths)
    batched = engine.serve(requests)
    assert set(batched) == {r.request_id for r in requests}
    for request in requests:
        single_device = twin.forward(request.activations[None])[0]
        assert np.array_equal(batched[request.request_id], single_device), (
            f"sharded cell (shards={num_shards}, pattern={pattern}, "
            f"padding={padding}, backend={backend}, policy={policy}) "
            f"diverged on {request.request_id} (tokens={request.tokens})"
        )
    # Every projection routed somewhere; all shards carried work.  Exact
    # mode runs each projection once per micro-batch; ladder mode's masked
    # attention additionally groups by true length, so calls only grow.
    stats = engine.stats()["sharding"]
    assert stats["tp_degree"] == num_shards
    assert stats["placement_policy"] == policy
    if padding == "exact":
        assert sum(stats["per_shard_calls"]) == engine.stats()["batches"] * 12
    else:
        assert sum(stats["per_shard_calls"]) >= engine.stats()["batches"] * 12
    assert all(calls > 0 for calls in stats["per_shard_calls"])
    assert stats["load_balance"] is not None and stats["load_balance"] >= 1.0
    if num_shards > 1:
        assert stats["cut_bytes_per_token"] > 0.0
        assert stats["comm_time_us"] > 0.0
        assert stats["comm_events"] > 0
        # Modelled comm kernels landed on the serving trace.
        # stats round to 3 decimals; the trace carries full precision.
        assert engine.trace.comm_time_us() == pytest.approx(stats["comm_time_us"], abs=1e-3)
    return engine


PATTERNS = [(16, 2, 8), (8, 2, 4)]
SHARD_COUNTS = [2, 4]
PADDINGS = ["exact", "ladder"]
BACKENDS = ["auto", "cublas-dense"]

FULL_GRID = [
    (s, p, pad, b) for s in SHARD_COUNTS for p in PATTERNS for pad in PADDINGS for b in BACKENDS
]

#: Tier-1 smoke subset crossing every axis: both shard counts, both
#: patterns, both paddings, both backends.
SMOKE_GRID = [
    (2, (16, 2, 8), "exact", "auto"),
    (4, (8, 2, 4), "ladder", "auto"),
    (2, (8, 2, 4), "ladder", "cublas-dense"),
    (4, (16, 2, 8), "exact", "cublas-dense"),
]


class TestShardedGoldenMatrix:
    @pytest.mark.parametrize("num_shards,pattern,padding,backend", SMOKE_GRID)
    def test_smoke_cells(self, rng, num_shards, pattern, padding, backend):
        assert_sharded_golden_cell(num_shards, pattern, padding, backend, rng)

    @pytest.mark.slow
    @pytest.mark.parametrize("num_shards,pattern,padding,backend", FULL_GRID)
    def test_full_matrix(self, rng, num_shards, pattern, padding, backend):
        assert_sharded_golden_cell(num_shards, pattern, padding, backend, rng)

    @pytest.mark.parametrize("policy", ["round_robin", "min_cut_reference"])
    def test_alternate_placement_policies_stay_exact(self, rng, policy):
        assert_sharded_golden_cell(2, (16, 2, 8), "exact", "auto", rng, policy=policy)

    def test_continuous_batching_cell(self, rng):
        """Sharding composes with the continuous step loop, bit for bit."""
        twin = make_encoder((16, 2, 8), 2)
        twin.set_dispatcher(KernelDispatcher())
        encoder = make_encoder((16, 2, 8), 2)
        engine = ModelServingEngine(
            encoder,
            dispatcher=sharded_dispatcher(2, "auto"),
            config=ServingConfig(
                scheduling="continuous", padding="ladder", name="sharded-continuous"
            ),
        )
        assert isinstance(engine.batcher, ContinuousBatcher)
        requests = [
            Request(r.request_id, r.activations, arrival_us=25.0 * i)
            for i, r in enumerate(make_requests(rng, [3, 7, 9, 12, 16]))
        ]
        results = engine.serve_continuous(requests, step_us=50.0)
        assert set(results) == {r.request_id for r in requests}
        for request in requests:
            single_device = twin.forward(request.activations[None])[0]
            assert np.array_equal(results[request.request_id], single_device)
        assert engine.stats()["continuous"]["completions"] == len(requests)
        assert engine.stats()["sharding"]["comm_time_us"] > 0.0

    def test_decoder_cell(self, rng):
        """Sharding composes with paged-KV decode serving, bit for bit."""
        prompts = [rng.normal(size=(t, HIDDEN)).astype(np.float32) for t in (4, 7)]
        single = DecoderServingEngine(make_encoder((16, 2, 8), 2), name="decode-single")
        sharded = DecoderServingEngine(
            make_encoder((16, 2, 8), 2),
            config=ServingConfig(sharding=ShardingConfig(tp_degree=2)),
        )
        assert isinstance(sharded.dispatcher, ShardedDispatcher)
        jobs = [
            DecodeRequest(f"d{i}", prompt=p, new_tokens=3) for i, p in enumerate(prompts)
        ]
        base = single.serve([DecodeRequest(f"d{i}", prompt=p, new_tokens=3)
                             for i, p in enumerate(prompts)])
        outs = sharded.serve(jobs)
        assert set(outs) == set(base)
        for rid in base:
            assert np.array_equal(outs[rid], base[rid])
        stats = sharded.stats()["sharding"]
        assert stats["tp_degree"] == 2
        assert sum(stats["per_shard_calls"]) > 0


class TestShardedDispatcherSurface:
    def test_unbound_operand_falls_back_to_shard_zero(self, rng):
        dispatcher = ShardedDispatcher(num_shards=3)
        encoder = make_encoder((16, 2, 8), 1)
        _, lin = next(iter(encoder.named_linear_layers()))
        operand = lin.operand
        assert dispatcher.shard_of(operand) == 0
        assert dispatcher.layer_of(operand) is None

    def test_bind_assigns_every_projection(self):
        dispatcher = ShardedDispatcher(num_shards=2)
        encoder = make_encoder((16, 2, 8), 2)
        placement = dispatcher.bind_encoder(encoder)
        owners = placement.as_dict()
        assert len(owners) == 12
        assert set(owners.values()) == {0, 1}
        for name, lin in encoder.named_linear_layers():
            operand = getattr(lin, "operand", None)
            if operand is not None:
                assert dispatcher.shard_of(operand) == owners[name]
                assert dispatcher.layer_of(operand) == name

    def test_warm_many_groups_per_shard(self):
        dispatcher = ShardedDispatcher(num_shards=2)
        encoder = make_encoder((16, 2, 8), 2)
        dispatcher.bind_encoder(encoder)
        operands = [lin.operand for _, lin in encoder.named_sparse_layers()]
        warmed = dispatcher.warm_many(operands, cs=(8,))
        assert warmed == len(operands)

    def test_stats_merge_across_shards(self):
        dispatcher = ShardedDispatcher(num_shards=2)
        health = dispatcher.health_stats()
        assert health["failures"] == 0 and health["quarantined"] == []
        cache = dispatcher.cache_stats()
        assert cache["size"] == 0
        dispatcher.clear_cache()  # no-op on fresh shards, must not raise

    def test_slower_link_costs_more_comm(self):
        encoder_a = make_encoder((16, 2, 8), 2)
        encoder_b = make_encoder((16, 2, 8), 2)
        fast = ShardedDispatcher(num_shards=2, link=NVLINK)
        slow = ShardedDispatcher(num_shards=2, link=PCIE4)
        fast.bind_encoder(encoder_a)
        slow.bind_encoder(encoder_b)
        t_fast = sum(k.time_us for k in fast.comm_kernels(tokens=64))
        t_slow = sum(k.time_us for k in slow.comm_kernels(tokens=64))
        assert t_slow > t_fast > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedDispatcher(num_shards=0)
        with pytest.raises(ValueError):
            ShardedDispatcher(placement_policy="magic")
