"""Continuous batching: scheduling tests and the arrival-invariance property.

The serving property under test, one scheduling policy further than the
async windows: the continuous step loop — admission between steps, one
batched (masked) forward per step — changes *when* requests execute and
*who* shares their micro-batch, never their numbers.  Serving N requests
continuously is bit-for-bit N sequential ``encoder.forward`` calls for
every arrival interleaving, step cadence, and exact/ladder mode; and the
per-request :class:`~repro.serving.continuous.CompletionRecord` metadata is
deterministic for a fixed schedule.
"""

import numpy as np
import pytest

from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import SpmmOperand
from repro.models import TransformerEncoder, tiny_config
from repro.serving.continuous import _bucket_rank
from repro.serving import (
    ContinuousBatcher,
    ModelServingEngine,
    Request,
    SchedulingConfig,
    ServingEngine,
    plan_continuous_batch,
    plan_continuous_batch_reference,
    simulate_serving,
    sweep_batch_windows,
    uniform_arrivals,
)

HIDDEN = 64


def make_encoder(num_layers=1, seed=0):
    cfg = tiny_config(
        hidden_size=HIDDEN, num_layers=num_layers, num_heads=4, intermediate_size=128
    )
    encoder = TransformerEncoder.init(cfg, seed=seed)
    sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
    return encoder


def make_requests(rng, lengths, arrivals=None, prefix="req"):
    arrivals = arrivals if arrivals is not None else [0.0] * len(lengths)
    return [
        Request(
            f"{prefix}-{i:04d}",
            rng.normal(size=(t, HIDDEN)).astype(np.float32),
            arrival_us=a,
        )
        for i, (t, a) in enumerate(zip(lengths, arrivals))
    ]


def continuous_engine(padding="ladder", num_layers=1, **batcher_kwargs):
    batcher = (
        ContinuousBatcher.ladder(**batcher_kwargs)
        if padding == "ladder"
        else ContinuousBatcher.exact_length(**batcher_kwargs)
    )
    return ModelServingEngine(
        make_encoder(num_layers), padding=padding, batcher=batcher, name=f"cont-{padding}"
    )


class TestContinuousBatcher:
    def test_next_batch_empty_or_not_yet_arrived(self, rng):
        batcher = ContinuousBatcher.ladder()
        assert batcher.next_batch(0.0) is None
        (req,) = make_requests(rng, [5], arrivals=[100.0])
        batcher.submit(req)
        assert batcher.next_batch(50.0) is None  # queued but not arrived
        assert batcher.next_event_us() == 100.0
        batch = batcher.next_batch(100.0)
        assert [r.request_id for r in batch.requests] == [req.request_id]
        assert batcher.next_event_us() is None

    def test_fcfs_across_rungs(self, rng):
        """The rung whose oldest member has waited longest runs first."""
        batcher = ContinuousBatcher.ladder()
        young_small, old_big = make_requests(rng, [5, 12], arrivals=[5.0, 2.0])
        batcher.submit(young_small)  # rung 8, arrived at 5
        batcher.submit(old_big)  # rung 16, arrived at 2
        first = batcher.next_batch(10.0)
        assert first.key.token_bucket == 16
        second = batcher.next_batch(10.0)
        assert second.key.token_bucket == 8

    def test_overflow_members_stay_queued_not_blocked(self, rng):
        """A rung with more members than max_batch_size chunks oldest-first;
        the overflow stays queued and merges with later arrivals."""
        batcher = ContinuousBatcher.ladder(max_batch_size=2)
        early = make_requests(rng, [3, 5, 7], arrivals=[0.0, 1.0, 2.0])
        for r in early:
            batcher.submit(r)
        first = batcher.next_batch(10.0)
        assert [r.request_id for r in first.requests] == ["req-0000", "req-0001"]
        (late,) = make_requests(rng, [8], arrivals=[11.0], prefix="late")
        batcher.submit(late)
        second = batcher.next_batch(11.0)
        assert [r.request_id for r in second.requests] == ["req-0002", "late-0000"]
        assert batcher.pending == 0

    def test_taken_ids_become_reusable(self, rng):
        batcher = ContinuousBatcher.ladder()
        (req,) = make_requests(rng, [5])
        batcher.submit(req)
        with pytest.raises(ValueError):
            batcher.submit(req)  # still pending
        batcher.next_batch(0.0)
        batcher.submit(req)  # completed: the id may return

    def test_plan_continuous_batch_deterministic_ties(self):
        """Arrival ties break by id, bucket ties by key — no hidden state."""
        from repro.serving import BucketKey

        items = [
            ("b", BucketKey(features=4, token_bucket=8), 0.0),
            ("a", BucketKey(features=4, token_bucket=8), 0.0),
            ("c", BucketKey(features=4, token_bucket=16), 0.0),
        ]
        key, chunk = plan_continuous_batch(
            items,
            key_of=lambda it: it[1],
            arrival_of=lambda it: it[2],
            id_of=lambda it: it[0],
            max_batch_size=8,
        )
        # Same arrival everywhere: the bucket whose oldest id sorts first
        # wins, and members come back oldest-then-id ordered.
        assert key.token_bucket == 8
        assert [it[0] for it in chunk] == ["a", "b"]
        assert plan_continuous_batch([], lambda i: i, lambda i: 0, lambda i: i, 4) is None


class TestSubmitValidatesExactlyOnce:
    """Regression: ``ContinuousBatcher.submit_many`` used to run the full
    non-finite payload scan twice per request (once itself, once in the
    parent).  Validation now happens exactly once, in the base submit
    methods, and the error surface is unchanged."""

    def test_payload_scanned_exactly_once(self, rng, monkeypatch):
        import repro.serving.batcher as batcher_mod

        scans = []
        real = batcher_mod._reject_non_finite

        def counting(request):
            scans.append(request.request_id)
            real(request)

        monkeypatch.setattr(batcher_mod, "_reject_non_finite", counting)
        batcher = ContinuousBatcher.ladder()
        reqs = make_requests(rng, [4, 6, 9], prefix="scan")
        batcher.submit(reqs[0])
        assert scans == ["scan-0000"]
        batcher.submit_many(reqs[1:])
        assert scans == ["scan-0000", "scan-0001", "scan-0002"]

    def test_malformed_submissions_raise_the_same_messages(self, rng):
        batcher = ContinuousBatcher.ladder()
        with pytest.raises(TypeError, match="submit expects a Request"):
            batcher.submit("nope")
        with pytest.raises(TypeError, match="submit_many expects Request instances"):
            batcher.submit_many(["nope"])
        bad = Request("cont-bad", np.full((4, HIDDEN), np.nan, dtype=np.float32))
        with pytest.raises(ValueError, match="cont-bad.*non-finite"):
            batcher.submit(bad)
        with pytest.raises(ValueError, match="cont-bad.*non-finite"):
            batcher.submit_many([bad])
        assert batcher.pending == 0

        (ok,) = make_requests(rng, [4], prefix="dup")
        batcher.submit(ok)
        with pytest.raises(ValueError, match="duplicate request_id .* in this window"):
            batcher.submit(Request(ok.request_id, ok.activations))
        with pytest.raises(ValueError, match="duplicate request_ids in this window"):
            batcher.submit_many([Request(ok.request_id, ok.activations)])
        twin_a, twin_b = make_requests(rng, [4, 4], prefix="twin")
        clone = Request(twin_a.request_id, twin_b.activations)
        with pytest.raises(
            ValueError, match="duplicate request_ids within the submitted batch"
        ):
            batcher.submit_many([twin_a, clone])
        assert batcher.pending == 1  # only the one accepted submit queued


class TestIncrementalSchedulerState:
    """Satellite coverage for the incremental queues: arrival inclusivity,
    ``next_event_us`` across partial drains and evictions, and the
    chunk-sequence equivalence property against the reference planner."""

    def test_arrived_is_inclusive_at_equality(self, rng):
        batcher = ContinuousBatcher.ladder()
        early, exact = make_requests(rng, [5, 7], arrivals=[50.0, 100.0], prefix="inc")
        batcher.submit(early)
        batcher.submit(exact)
        assert [r.request_id for r in batcher.arrived(99.0)] == ["inc-0000"]
        # arrival_us == now_us is eligible, both in arrived() ...
        assert sorted(r.request_id for r in batcher.arrived(100.0)) == [
            "inc-0000",
            "inc-0001",
        ]
        # ... and for the chunk itself.
        batch = batcher.next_batch(100.0)
        taken = {r.request_id for r in batch.requests}
        while batcher.pending:
            taken |= {r.request_id for r in batcher.next_batch(100.0).requests}
        assert taken == {"inc-0000", "inc-0001"}

    def test_next_event_after_partial_drain(self, rng):
        batcher = ContinuousBatcher.ladder(max_batch_size=2)
        reqs = make_requests(rng, [4, 4, 4, 4], arrivals=[10.0, 20.0, 30.0, 99.0],
                             prefix="ev")
        for r in reqs:
            batcher.submit(r)
        assert batcher.next_event_us() == 10.0
        batch = batcher.next_batch(35.0)  # cap 2: takes 10.0 and 20.0
        assert [r.request_id for r in batch.requests] == ["ev-0000", "ev-0001"]
        assert batcher.next_event_us() == 30.0  # head advanced past the drain
        batcher.next_batch(35.0)
        assert batcher.next_event_us() == 99.0  # only the future request left

    def test_next_event_after_shed_and_expiry(self, rng):
        payload = rng.normal(size=(4, HIDDEN)).astype(np.float32)
        # drop-expired: the expired head is evicted to admit the newcomer,
        # and the arrival heap must not keep reporting it.
        batcher = ContinuousBatcher.ladder(max_queue_depth=1,
                                           shed_policy="drop-expired")
        batcher.submit(Request("ne-dead", payload, arrival_us=5.0, deadline_us=10.0))
        assert batcher.next_event_us() == 5.0
        assert batcher.submit(Request("ne-live", payload, arrival_us=20.0)) is not None
        assert batcher.total_expired == 1
        assert batcher.next_event_us() == 20.0
        # reject-newest: the shed request never enters the heap at all.
        rejecting = ContinuousBatcher.ladder(max_queue_depth=1)
        rejecting.submit(Request("sh-0", payload, arrival_us=5.0))
        assert rejecting.submit(Request("sh-1", payload, arrival_us=1.0)) is None
        assert rejecting.total_shed == 1
        assert rejecting.next_event_us() == 5.0
        # explicit expiry likewise advances the event horizon.
        expiring = ContinuousBatcher.ladder()
        expiring.submit(Request("ex-0", payload, arrival_us=5.0, deadline_us=10.0))
        expiring.submit(Request("ex-1", payload, arrival_us=40.0))
        assert expiring.next_event_us() == 5.0
        assert [r.request_id for r in expiring.expire_due(60.0)] == ["ex-0"]
        assert expiring.next_event_us() == 40.0

    @pytest.mark.parametrize(
        "shed_kwargs",
        [
            {},
            {"max_queue_depth": 6, "shed_policy": "reject-newest"},
            {"max_queue_depth": 6, "shed_policy": "drop-expired"},
        ],
        ids=["unbounded", "reject-newest", "drop-expired"],
    )
    def test_chunk_sequence_matches_reference_planner(self, rng, shed_kwargs):
        """The equivalence property: over random arrival schedules, step
        cadences and shed policies, the incremental batcher emits exactly
        the chunk sequence the reference planner computes from a mirrored
        flat pending list."""
        for _ in range(4):
            batcher = ContinuousBatcher.ladder(max_batch_size=3, **shed_kwargs)
            n = 24
            lengths = rng.integers(1, 20, size=n)
            arrivals = np.sort(rng.uniform(0.0, 1000.0, size=n))
            reqs = [
                Request(
                    f"prop-{i:04d}",
                    rng.normal(size=(int(t), HIDDEN)).astype(np.float32),
                    arrival_us=float(a),
                    deadline_us=(float(a + rng.uniform(5.0, 400.0))
                                 if rng.random() < 0.5 else None),
                )
                for i, (t, a) in enumerate(zip(lengths, arrivals))
            ]
            mirror = {}
            cadence = float(rng.uniform(20.0, 120.0))
            now, i, steps = 0.0, 0, 0
            while (i < len(reqs) or batcher.pending) and steps < 10_000:
                steps += 1
                # Admit everything that has arrived; the mirror only keeps
                # what the batcher actually accepted, minus what shedding's
                # drop-expired path evicted along the way.
                before = len(batcher.expired_log)
                while i < len(reqs) and reqs[i].arrival_us <= now:
                    request = reqs[i]
                    i += 1
                    if batcher.submit(request) is not None:
                        mirror[request.request_id] = request
                for evicted in batcher.expired_log[before:]:
                    mirror.pop(evicted.request_id, None)
                for expired in batcher.expire_due(now):
                    mirror.pop(expired.request_id)
                reference = plan_continuous_batch_reference(
                    [r for r in mirror.values() if r.arrival_us <= now],
                    key_of=batcher.bucket_key,
                    arrival_of=lambda r: r.arrival_us,
                    id_of=lambda r: r.request_id,
                    max_batch_size=batcher.max_batch_size,
                )
                batch = batcher.next_batch(now)
                if reference is None:
                    assert batch is None
                else:
                    ref_key, ref_chunk = reference
                    assert batch is not None
                    assert batch.key == ref_key
                    assert [r.request_id for r in batch.requests] == [
                        r.request_id for r in ref_chunk
                    ]
                    for r in batch.requests:
                        mirror.pop(r.request_id)
                # The incremental key order never drifts from the bucket
                # map, through every creation/drain the schedule causes.
                assert batcher._sorted_keys == sorted(
                    batcher._buckets, key=_bucket_rank
                )
                if batch is None and i < len(reqs):
                    now = max(now + cadence, reqs[i].arrival_us)
                else:
                    now += cadence
            assert steps < 10_000, "scheduler failed to drain the schedule"
            assert not mirror and batcher.pending == 0

    def test_sorted_keys_track_bucket_churn(self, rng):
        """Bucket creation/destruction churn: lengths spanning many rungs,
        drained one chunk at a time so buckets are born and die constantly.
        The incrementally maintained key order must equal a fresh sort at
        every point, and :meth:`arrived` must report the same requests in
        the same order as a scratch recomputation from the bucket map."""
        batcher = ContinuousBatcher.ladder(max_batch_size=2)
        n = 60
        lengths = (np.arange(n) % 70) + 1  # rungs 8/16/32/64 + exact tails
        arrivals = np.sort(rng.uniform(0.0, 500.0, size=n))
        reqs = [
            Request(
                f"churn-{i:04d}",
                rng.normal(size=(int(t), HIDDEN)).astype(np.float32),
                arrival_us=float(a),
            )
            for i, (t, a) in enumerate(zip(lengths, arrivals))
        ]

        def check_invariants(now):
            assert batcher._sorted_keys == sorted(batcher._buckets, key=_bucket_rank)
            expected = []
            for key in sorted(batcher._buckets, key=_bucket_rank):
                expected.extend(
                    r for r in batcher._buckets[key] if r.arrival_us <= now
                )
            got = batcher.arrived(now)
            assert [r.request_id for r in got] == [r.request_id for r in expected]

        i, now = 0, 0.0
        while i < len(reqs) or batcher.pending:
            while i < len(reqs) and reqs[i].arrival_us <= now:
                batcher.submit(reqs[i])
                i += 1
                check_invariants(now)  # after every bucket creation
            if batcher.next_batch(now) is None and i < len(reqs):
                now = reqs[i].arrival_us
            check_invariants(now)  # after every chunk (bucket drains)
            now += 13.0
        assert batcher._sorted_keys == [] and batcher._buckets == {}


class TestContinuousServingBitExactness:
    """The tentpole guarantee: continuous serving of N requests is bit-for-bit
    N sequential encoder forwards, for every interleaving and cadence."""

    LENGTHS = [1, 5, 7, 8, 9, 12, 17, 17]

    ARRIVAL_PATTERNS = [
        [0.0] * 8,  # burst
        [i * 40.0 for i in range(8)],  # steady trickle
        [280.0, 240.0, 200.0, 160.0, 120.0, 80.0, 40.0, 0.0],  # ids in reverse
        [0.0, 0.0, 500.0, 500.0, 500.0, 900.0, 900.0, 2000.0],  # clumps
    ]

    @pytest.mark.parametrize("padding", ["ladder", "exact"])
    def test_interleavings_and_cadences_preserve_bits(self, rng, padding):
        requests = make_requests(rng, self.LENGTHS)
        baseline = ModelServingEngine(make_encoder(), padding=padding).serve(requests)
        for arrivals in self.ARRIVAL_PATTERNS:
            for step_us in (0.0, 75.0, 1500.0):
                engine = continuous_engine(padding)
                timed = [
                    Request(r.request_id, r.activations, arrival_us=a)
                    for r, a in zip(requests, arrivals)
                ]
                results = engine.serve_continuous(timed, step_us=step_us)
                assert set(results) == set(baseline)
                for rid in baseline:
                    assert np.array_equal(results[rid], baseline[rid]), (
                        padding,
                        arrivals,
                        step_us,
                        rid,
                    )

    def test_continuous_equals_sequential_forward(self, rng):
        """Direct form of the guarantee: each served output equals the
        standalone encoder.forward of that request, bit for bit."""
        engine = continuous_engine("ladder", num_layers=2)
        requests = make_requests(
            rng, [3, 7, 9, 16, 17, 33], arrivals=[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
        )
        results = engine.serve_continuous(requests, step_us=25.0)
        for request in requests:
            sequential = engine.encoder.forward(request.activations[None])[0]
            assert np.array_equal(results[request.request_id], sequential), request.request_id

    def test_single_operator_engine_serves_continuously(self, rng, vnm_matrix):
        """The step loop is engine-agnostic: the single-operator engine
        serves the same bits continuously as in one window."""
        operand = SpmmOperand.from_vnm(vnm_matrix)
        requests = [
            Request(f"op-{i}", rng.normal(size=(t, operand.k)).astype(np.float32),
                    arrival_us=i * 30.0)
            for i, t in enumerate([5, 17, 17, 30])
        ]
        baseline = ServingEngine(operand).serve(requests)
        engine = ServingEngine(operand, batcher=ContinuousBatcher())
        results = engine.serve_continuous(requests, step_us=50.0)
        for rid in baseline:
            assert np.array_equal(results[rid], baseline[rid]), rid
        assert engine.steps_executed >= 1
        assert set(engine.completions) == {r.request_id for r in requests}
        # Both engines surface the step-loop counters the same way.
        assert engine.stats()["continuous"] == {
            "steps": engine.steps_executed,
            "completions": len(requests),
        }


def run_slo_golden_cell(rng, padding, policy, arrivals, step_us, classes=None):
    """One priority golden cell: SLO-scheduled continuous serving must stay
    bit-for-bit N sequential forwards — the scheduling policy only reorders
    *when* requests run, never their numbers."""
    lengths = [1, 5, 7, 8, 9, 12, 17, 17]
    requests = make_requests(rng, lengths)
    baseline = ModelServingEngine(make_encoder(), padding=padding).serve(requests)
    classes = classes if classes is not None else [i % 3 for i in range(len(lengths))]
    scheduling = SchedulingConfig(policy=policy, class_weights=(1, 2, 4))
    engine = continuous_engine(padding, scheduling=scheduling)
    timed = [
        Request(r.request_id, r.activations, arrival_us=a, priority_class=c)
        for r, a, c in zip(requests, arrivals, classes)
    ]
    results = engine.serve_continuous(timed, step_us=step_us)
    assert set(results) == set(baseline)
    for rid in baseline:
        assert np.array_equal(results[rid], baseline[rid]), (
            padding, policy, arrivals, step_us, rid,
        )
    assert engine.batcher.admission_stats()["policy"] == policy


class TestSLOSchedulingBitExactness:
    """The golden-matrix cells the SLO tentpole adds: priority and
    weighted-fair scheduling reorder execution but preserve every bit.
    Scheduling is numerics-free — these cells pin that it stays so."""

    ARRIVAL_PATTERNS = TestContinuousServingBitExactness.ARRIVAL_PATTERNS

    @pytest.mark.parametrize(
        "padding,policy,pattern_idx,step_us",
        [
            ("ladder", "priority", 0, 0.0),
            ("ladder", "weighted-fair", 1, 75.0),
            ("exact", "priority", 2, 75.0),
            ("exact", "weighted-fair", 3, 0.0),
        ],
        ids=[
            "ladder-priority-burst",
            "ladder-wf-trickle",
            "exact-priority-reversed",
            "exact-wf-clumps",
        ],
    )
    def test_smoke_cells(self, rng, padding, policy, pattern_idx, step_us):
        run_slo_golden_cell(
            rng, padding, policy, self.ARRIVAL_PATTERNS[pattern_idx], step_us
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("padding", ["ladder", "exact"])
    @pytest.mark.parametrize("policy", ["priority", "weighted-fair"])
    @pytest.mark.parametrize("pattern_idx", [0, 1, 2, 3])
    @pytest.mark.parametrize("step_us", [0.0, 75.0, 1500.0])
    def test_full_grid(self, rng, padding, policy, pattern_idx, step_us):
        run_slo_golden_cell(
            rng, padding, policy, self.ARRIVAL_PATTERNS[pattern_idx], step_us
        )

    def test_priority_reorders_execution_but_not_bits(self, rng):
        """The policy visibly changes the schedule (the high class completes
        in the earliest step despite arriving last) while outputs stay
        bit-exact — scheduling moved work, never numerics."""
        engine = continuous_engine(
            "ladder", max_batch_size=1,
            scheduling=SchedulingConfig(policy="priority"),
        )
        low_a, low_b = make_requests(rng, [5, 6], arrivals=[0.0, 0.0], prefix="low")
        (vip,) = make_requests(rng, [7], arrivals=[0.0], prefix="vip")
        # Same instant, submitted last, lowest id-rank loses under FCFS —
        # only the class can put it first.
        vip = Request(vip.request_id, vip.activations, arrival_us=0.0, priority_class=2)
        results = engine.serve_continuous([low_a, low_b, vip], step_us=10.0)
        recs = engine.completions
        assert recs["vip-0000"].step <= min(
            recs["low-0000"].step, recs["low-0001"].step
        )
        for req in (low_a, low_b, vip):
            sequential = engine.encoder.forward(req.activations[None])[0]
            assert np.array_equal(results[req.request_id], sequential)


class TestCompletionMetadata:
    def test_records_are_deterministic_for_a_fixed_schedule(self, rng):
        lengths = [3, 5, 7, 9, 12, 17]
        arrivals = [0.0, 20.0, 40.0, 40.0, 60.0, 200.0]
        runs = []
        for _ in range(2):
            req_rng = np.random.default_rng(7)
            engine = continuous_engine("ladder")
            requests = make_requests(req_rng, lengths, arrivals)
            engine.serve_continuous(requests, step_us=50.0)
            runs.append(dict(engine.completions))
        assert runs[0] == runs[1]
        records = runs[0]
        assert set(records) == {f"req-{i:04d}" for i in range(len(lengths))}
        for rid, rec in records.items():
            assert rec.request_id == rid
            assert rec.completed_us >= rec.arrival_us
            assert rec.wait_us == rec.completed_us - rec.arrival_us
            assert rec.rung >= 1
            # batch_size agrees with the number of records sharing the step.
            assert rec.batch_size == sum(1 for r in records.values() if r.step == rec.step)

    def test_late_request_joins_open_rung_mid_flight(self, rng):
        """The defining continuous behaviour: a request arriving after its
        rung-mates were queued (but before their step ran) executes in the
        same micro-batch."""
        engine = continuous_engine("ladder")
        early = make_requests(rng, [3, 5], arrivals=[0.0, 10.0])
        (late,) = make_requests(rng, [7], arrivals=[500.0], prefix="late")
        for r in early:
            engine.submit(r)
        # No step has run yet; the late joiner lands in the same rung-8 bucket.
        engine.submit(late)
        results = engine.step(500.0)
        assert set(results) == {r.request_id for r in early} | {late.request_id}
        steps = {engine.completions[rid].step for rid in results}
        assert steps == {0}
        assert engine.completions[late.request_id].batch_size == 3

    def test_completed_requests_leave_without_blocking_the_rung(self, rng):
        """Chunked rung-mates complete across steps: the first chunk leaves,
        the remainder merges with a later arrival instead of waiting for a
        window."""
        engine = continuous_engine("ladder", max_batch_size=2)
        first_wave = make_requests(rng, [3, 5, 7], arrivals=[0.0, 0.0, 0.0])
        (joiner,) = make_requests(rng, [8], arrivals=[30.0], prefix="join")
        results = engine.serve_continuous(first_wave + [joiner], step_us=40.0)
        assert len(results) == 4
        recs = engine.completions
        assert recs["req-0000"].step == recs["req-0001"].step == 0
        assert recs["req-0002"].step == recs["join-0000"].step == 1
        assert recs["join-0000"].batch_size == 2
        assert engine.stats()["continuous"] == {"steps": 2, "completions": 4}


class TestContinuousApi:
    def test_step_requires_continuous_batcher(self, rng):
        engine = ModelServingEngine(make_encoder())
        with pytest.raises(TypeError, match="ContinuousBatcher"):
            engine.step(0.0)
        with pytest.raises(TypeError, match="ContinuousBatcher"):
            engine.serve_continuous(make_requests(rng, [5]))

    def test_negative_cadence_rejected(self, rng):
        engine = continuous_engine("ladder")
        with pytest.raises(ValueError, match="step_us"):
            engine.serve_continuous(make_requests(rng, [5]), step_us=-1.0)

    def test_exact_mode_refuses_padding_continuous_batcher(self, rng):
        """padding='exact' + a ladder continuous batcher must fail loudly at
        execution, exactly like the windowed engines do."""
        engine = ModelServingEngine(
            make_encoder(), padding="exact", batcher=ContinuousBatcher.ladder()
        )
        with pytest.raises(ValueError, match="padding='ladder'"):
            engine.serve_continuous(make_requests(rng, [5]))  # 5 pads to rung 8

    def test_idle_step_returns_empty(self):
        engine = continuous_engine("ladder")
        assert engine.step(0.0) == {}
        assert engine.steps_executed == 0

    def test_streaming_intake_validates_on_admission(self, rng):
        engine = continuous_engine("ladder")
        bad = Request("bad", rng.normal(size=(4, HIDDEN + 1)).astype(np.float32))
        with pytest.raises(ValueError, match="hidden size"):
            engine.serve_continuous([bad])

    def test_prequeued_future_requests_are_served_not_stranded(self, rng):
        """Regression: a request submitted directly onto the engine with a
        future arrival must be drained by serve_continuous (via the
        batcher's next_event_us), not silently left pending."""
        engine = continuous_engine("ladder")
        (future,) = make_requests(rng, [5], arrivals=[100.0], prefix="future")
        engine.submit(future)
        (now_req,) = make_requests(rng, [7], arrivals=[0.0], prefix="now")
        results = engine.serve_continuous([now_req])
        assert set(results) == {"now-0000", "future-0000"}
        assert engine.batcher.pending == 0
        sequential = engine.encoder.forward(future.activations[None])[0]
        assert np.array_equal(results["future-0000"], sequential)


class TestContinuousSimulation:
    @pytest.fixture
    def operand(self, rng):
        encoder = make_encoder()
        _, layer = next(iter(encoder.named_sparse_layers()))
        return SpmmOperand.from_vnm(layer.sparse_weight)

    def test_p99_latency_beats_async_at_equal_offered_load(self, operand):
        """The acceptance property of the continuous policy: same arrival
        schedule, every request served by both policies, and the continuous
        p99 completion latency is no worse than the async windows'."""
        requests = uniform_arrivals(64, rate_rps=5000, tokens=[3, 9, 17, 33])
        async_report = simulate_serving(
            operand, requests, window_us=2000.0, window_policy="async"
        )
        cont_report = simulate_serving(
            operand, requests, window_us=2000.0, window_policy="continuous"
        )
        assert cont_report.num_requests == async_report.num_requests == 64
        assert len(cont_report.latencies_us) == 64
        assert cont_report.p99_latency_us <= async_report.p99_latency_us
        assert cont_report.mean_latency_us <= async_report.mean_latency_us
        assert cont_report.window_policy == "continuous"

    def test_arrival_order_invariant_summary(self, operand):
        requests = uniform_arrivals(24, rate_rps=20000, tokens=[9, 17, 33])
        a = simulate_serving(operand, requests, window_us=400.0, window_policy="continuous")
        b = simulate_serving(
            operand, list(reversed(requests)), window_us=400.0, window_policy="continuous"
        )
        assert a.summary() == b.summary()

    def test_backlog_still_batches(self, operand):
        """All requests queued at t=0: the continuous scheduler must form
        multi-request batches (it admits everything arrived), not degrade
        to per-request dispatch."""
        requests = [
            uniform_arrivals(32, rate_rps=1e9, tokens=[17])[i] for i in range(32)
        ]
        report = simulate_serving(operand, requests, window_us=100.0, window_policy="continuous")
        assert report.num_batches < 32
        assert report.mean_batch_size > 1.0

    def test_window_value_is_irrelevant_including_zero(self, operand):
        """Regression: the continuous policy has no windows to disable —
        window_us=0 must run the same executor-driven schedule as any
        other value, not fall back to per-request dispatch."""
        requests = [
            uniform_arrivals(32, rate_rps=1e9, tokens=[17])[i] for i in range(32)
        ]
        zero = simulate_serving(operand, requests, window_us=0.0, window_policy="continuous")
        some = simulate_serving(operand, requests, window_us=100.0, window_policy="continuous")
        assert zero.num_batches == some.num_batches < 32
        assert zero.latencies_us == some.latencies_us

    def test_sweep_accepts_continuous_policy(self, operand):
        requests = uniform_arrivals(12, rate_rps=50000, tokens=[17])
        reports = sweep_batch_windows(
            operand, requests, [100.0, 2000.0], window_policy="continuous"
        )
        assert [r.window_policy for r in reports] == ["continuous", "continuous"]
        # Nothing waits on the window, so the sweep rows coincide (the
        # recorded window_us is the only difference).
        a, b = reports[0].summary(), reports[1].summary()
        a.pop("window_us"), b.pop("window_us")
        assert a == b

    def test_unknown_policy_rejected(self, operand):
        requests = uniform_arrivals(4, rate_rps=1000, tokens=[9])
        with pytest.raises(ValueError, match="continuous"):
            simulate_serving(operand, requests, window_us=10.0, window_policy="nope")
