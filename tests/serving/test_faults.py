"""Fault-tolerant serving: injection determinism, failover bit-exactness,
request outcomes, admission shedding, and the chaos simulator.

Every test here is deterministic by construction — fault plans are pure
data keyed by (backend, call index), so a scenario replays identically.
The CI chaos job re-runs this module across several ``FAULT_SEED`` values;
seed-parametric tests read the seed from the environment, while the
pinned-outcome tests use explicit :class:`FaultSpec` plans so their
expected counts never move.

The load-bearing property: fault tolerance never buys availability with
numerics.  A request reported ``ok`` — whether it failed over, shared a
micro-batch with a poisoned payload, or rode through a chaos scenario —
is bit-for-bit its sequential fault-free execution.
"""

import os

import numpy as np
import pytest

from repro.formats.vnm import VNMSparseMatrix
from repro.integration import VNMSparsifier, sparsify_encoder
from repro.kernels.dispatch import KernelDispatcher, SpmmOperand
from repro.models import TransformerEncoder, tiny_config
from repro.pruning.masks import apply_mask
from repro.pruning.vnm import vnm_mask
from repro.serving import (
    OUTCOME_FAILED,
    OUTCOME_SHED,
    OUTCOME_TIMED_OUT,
    ContinuousBatcher,
    DecodeRequest,
    DecoderServingEngine,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ModelServingEngine,
    Request,
    SchedulingConfig,
    ServingEngine,
    ServingSimReport,
    SimulatedRequest,
    decode_reference,
    outcome_counts,
    poisson_arrivals,
    simulate_chaos,
)

pytestmark = pytest.mark.faults

#: The CI chaos job replays this module with several seeds; locally it's 0.
FAULT_SEED = int(os.environ.get("FAULT_SEED", "0"))

K_FEATURES = 128
HIDDEN = 64


@pytest.fixture
def vnm_weight(rng):
    dense = rng.normal(size=(64, K_FEATURES))
    pruned = apply_mask(dense, vnm_mask(dense, v=16, n=2, m=8)).astype(np.float32)
    return VNMSparseMatrix.from_dense(pruned, v=16, n=2, m=8, strict=True)


@pytest.fixture
def operand(vnm_weight):
    return SpmmOperand.from_vnm(vnm_weight)


def make_requests(rng, token_counts, prefix="req", **kwargs):
    return [
        Request(
            f"{prefix}-{i:04d}",
            rng.normal(size=(t, K_FEATURES)).astype(np.float32),
            **kwargs,
        )
        for i, t in enumerate(token_counts)
    ]


class TestFaultPlan:
    def test_seeded_plan_replays_identically(self):
        backends = ("cublas-dense", "spatha-plan", "sputnik-csr")
        a = FaultPlan.seeded(backends, seed=FAULT_SEED, failure_rate=0.2, latency_rate=0.1)
        b = FaultPlan.seeded(backends, seed=FAULT_SEED, failure_rate=0.2, latency_rate=0.1)
        assert a.specs == b.specs
        for name in backends:
            for idx in range(64):
                assert a.decide(name, idx) == b.decide(name, idx)

    def test_per_backend_streams_are_independent(self):
        """The faults drawn for one backend don't depend on which other
        backends are listed — each gets its own crc32-subseeded stream."""
        solo = FaultPlan.seeded(("cublas-dense",), seed=FAULT_SEED, failure_rate=0.3)
        both = FaultPlan.seeded(
            ("cublas-dense", "spatha-plan"), seed=FAULT_SEED, failure_rate=0.3
        )
        mine = [s for s in both.specs if s.backend == "cublas-dense"]
        assert tuple(mine) == solo.specs

    def test_transient_window_and_persistent_tail(self):
        transient = FaultSpec(backend="x", kind="transient", at_call=2, count=3)
        persistent = FaultSpec(backend="x", kind="persistent", at_call=2)
        assert [transient.applies(i) for i in range(7)] == [
            False, False, True, True, True, False, False,
        ]
        assert [persistent.applies(i) for i in range(5)] == [
            False, False, True, True, True,
        ]

    def test_latency_spikes_accumulate_without_failing(self):
        plan = FaultPlan(
            [
                FaultSpec(backend="x", kind="latency", at_call=1, latency_us=100.0),
                FaultSpec(backend="x", kind="latency", at_call=1, latency_us=50.0),
            ]
        )
        decision = plan.decide("x", 1)
        assert not decision.fail
        assert decision.latency_us == 150.0
        assert plan.decide("x", 0) == plan.decide("y", 1)  # untouched calls

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(backend="x", kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(backend="x", kind="latency", latency_us=0.0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(("x",), seed=0, failure_rate=0.7, latency_rate=0.7)


class TestInjectorFailover:
    def test_ok_output_under_faults_is_bit_exact_fault_free(self, vnm_weight, rng):
        """Transient faults on the chosen backend change who serves, never
        the bits: the faulted engine's outputs equal the fault-free ones."""
        requests = make_requests(rng, [5, 12, 30, 7])
        baseline = ServingEngine(vnm_weight, dispatcher=KernelDispatcher()).serve(requests)

        dispatcher = KernelDispatcher()
        engine = ServingEngine(vnm_weight, dispatcher=dispatcher)
        chosen = dispatcher.dispatch(engine.operand, 8).backend
        plan = FaultPlan([FaultSpec(backend=chosen, kind="transient", at_call=0, count=2)])
        FaultInjector(plan).arm(dispatcher)

        faulted = engine.serve(requests)
        assert set(faulted) == set(baseline)
        for rid in baseline:
            assert np.array_equal(faulted[rid], baseline[rid])
        assert all(o.ok for o in engine.outcomes.values())
        assert dispatcher.health_stats()["failovers"] >= 1
        assert engine.stats()["dispatch_health"]["failures"] >= 1

    def test_failover_matches_direct_fallback_backend(self, operand, rng):
        """The failover result is bit-for-bit the next-ranked backend
        invoked directly (through the proxy's untouched inner)."""
        dispatcher = KernelDispatcher()
        decision = dispatcher.dispatch(operand, 8)
        fallback = next(n for n, _ in decision.ranking if n != decision.backend)
        plan = FaultPlan([FaultSpec(backend=decision.backend, kind="persistent")])
        FaultInjector(plan).arm(dispatcher)

        b = rng.normal(size=(K_FEATURES, 8)).astype(np.float32)
        out = dispatcher.execute(operand, b)
        direct = dispatcher.backend(fallback).inner.execute(operand, b)
        assert np.array_equal(out, direct)
        assert decision.failovers == {f"{decision.backend}->{fallback}": 1}

    def test_persistent_failure_quarantines_then_probe_readmits(self, operand, rng):
        """The acceptance scenario: a persistently failing backend is
        quarantined after K consecutive failures, traffic keeps flowing
        bit-exactly via the fallback, and once the plan's fault window ends
        a probe re-admits the backend."""
        dispatcher = KernelDispatcher(failure_threshold=2, probe_interval=2)
        decision = dispatcher.dispatch(operand, 8)
        victim = decision.backend
        # "Persistent" for exactly 2 calls: enough to trip the breaker,
        # healed by the time the probe arrives.
        plan = FaultPlan([FaultSpec(backend=victim, kind="transient", at_call=0, count=2)])
        injector = FaultInjector(plan).arm(dispatcher)

        b = rng.normal(size=(K_FEATURES, 8)).astype(np.float32)
        dispatcher.execute(operand, b)  # fail 1 -> failover
        dispatcher.execute(operand, b)  # fail 2 -> quarantined
        assert dispatcher.is_quarantined(victim)
        assert dispatcher.health_stats()["quarantines"] == 1
        calls_when_quarantined = injector.calls(victim)
        for _ in range(2):
            dispatcher.execute(operand, b)  # countdown ticks, victim untouched
        assert injector.calls(victim) == calls_when_quarantined
        out = dispatcher.execute(operand, b)  # probe -> healed -> readmitted
        assert not dispatcher.is_quarantined(victim)
        assert dispatcher.health_stats()["readmissions"] == 1
        assert np.array_equal(out, dispatcher.backend(victim).inner.execute(operand, b))

    def test_arm_disarm_round_trip(self, operand, rng):
        dispatcher = KernelDispatcher()
        originals = list(dispatcher.backends)
        injector = FaultInjector(FaultPlan([FaultSpec(backend="cublas-dense", kind="persistent")]))
        injector.arm(dispatcher)
        assert all(b is not o for b, o in zip(dispatcher.backends, originals))
        injector.disarm(dispatcher)
        assert dispatcher.backends == originals


class TestEngineOutcomes:
    def test_expired_deadline_reports_timed_out(self, vnm_weight, rng):
        engine = ServingEngine(
            vnm_weight,
            dispatcher=KernelDispatcher(),
            batcher=ContinuousBatcher.ladder(),
        )
        live, doomed = make_requests(rng, [5, 5], prefix="dl")
        doomed = Request(
            doomed.request_id, doomed.activations, arrival_us=0.0, deadline_us=10.0
        )
        engine.submit(live)
        engine.submit(doomed)
        results = engine.step(50.0)  # the step clock is already past the deadline
        assert set(results) == {live.request_id}
        outcome = engine.outcomes[doomed.request_id]
        assert outcome.status == OUTCOME_TIMED_OUT
        assert outcome.completed_us == 10.0  # the deadline, not the step clock
        assert engine.outcomes[live.request_id].ok

    def test_overload_sheds_newest_and_records_outcomes(self, vnm_weight, rng):
        engine = ServingEngine(
            vnm_weight,
            dispatcher=KernelDispatcher(),
            batcher=ContinuousBatcher.ladder(max_batch_size=4, max_queue_depth=2),
        )
        requests = make_requests(rng, [5, 5, 5], prefix="ovl")
        for req in requests:
            engine.submit(req)
        results = engine.flush()
        kept, shed = requests[:2], requests[2]
        assert set(results) == {r.request_id for r in kept}
        assert engine.outcomes[shed.request_id].status == OUTCOME_SHED
        counts = outcome_counts(engine.outcomes.values())
        assert counts == {"ok": 2, "failed": 0, "timed_out": 0, "shed": 1}
        stats = engine.stats()["admission"]
        assert stats["shed"] == 1
        assert stats["shed_policy"] == "reject-newest"

    def test_poisoned_payload_is_isolated_from_batchmates(self, vnm_weight, rng):
        """A payload corrupted *after* admission (submit-time validation
        can't see it) fails alone; its micro-batch peers complete with
        outputs bit-identical to a clean run."""
        requests = make_requests(rng, [5, 5, 5], prefix="poison")
        baseline = ServingEngine(vnm_weight, dispatcher=KernelDispatcher()).serve(
            [Request(r.request_id, r.activations.copy()) for r in requests]
        )
        engine = ServingEngine(vnm_weight, dispatcher=KernelDispatcher())
        for req in requests:
            engine.submit(req)
        requests[1].activations[0, 0] = np.nan  # corrupt in place, post-admission
        results = engine.flush()
        assert set(results) == {requests[0].request_id, requests[2].request_id}
        for rid in results:
            assert np.array_equal(results[rid], baseline[rid])
        outcome = engine.outcomes[requests[1].request_id]
        assert outcome.status == OUTCOME_FAILED
        assert "non-finite" in outcome.detail

    def test_all_backends_failing_reports_failed_not_crash(self, vnm_weight, rng):
        dispatcher = KernelDispatcher()
        engine = ServingEngine(vnm_weight, dispatcher=dispatcher)
        names = [b.name for b in dispatcher.backends]
        plan = FaultPlan([FaultSpec(backend=n, kind="persistent") for n in names])
        FaultInjector(plan).arm(dispatcher)
        requests = make_requests(rng, [5, 12], prefix="dead")
        results = engine.serve(requests)
        assert results == {}
        for req in requests:
            outcome = engine.outcomes[req.request_id]
            assert outcome.status == OUTCOME_FAILED
            assert "all candidate backends failed" in outcome.detail

    def test_submit_rejects_non_finite_payload_by_name(self, vnm_weight, rng):
        engine = ServingEngine(vnm_weight, dispatcher=KernelDispatcher())
        bad = rng.normal(size=(5, K_FEATURES)).astype(np.float32)
        bad[2, 7] = np.inf
        with pytest.raises(ValueError, match="nf-0666.*non-finite"):
            engine.submit(Request("nf-0666", bad))
        assert engine.flush() == {}  # nothing was admitted


class TestModelEngineUnderFaults:
    def _encoder(self, seed=0):
        cfg = tiny_config(
            hidden_size=HIDDEN, num_layers=1, num_heads=4, intermediate_size=128
        )
        encoder = TransformerEncoder.init(cfg, seed=seed)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return encoder

    def test_ok_requests_are_bit_exact_sequential_forward(self, rng):
        """Model-level acceptance: under injected faults, every request
        reported ``ok`` equals its sequential fault-free encoder.forward."""
        lengths = [5, 12, 30, 7, 12]
        payloads = [rng.normal(size=(t, HIDDEN)).astype(np.float32) for t in lengths]
        baseline_encoder = self._encoder()
        expected = [baseline_encoder.forward(x[None])[0] for x in payloads]

        engine = ModelServingEngine(
            self._encoder(), padding="ladder", batcher=ContinuousBatcher.ladder()
        )
        plan = FaultPlan.seeded(
            [b.name for b in engine.dispatcher.backends],
            seed=FAULT_SEED,
            failure_rate=0.25,
        )
        FaultInjector(plan).arm(engine.dispatcher)
        requests = [
            Request(f"model-{i:04d}", x) for i, x in enumerate(payloads)
        ]
        results = engine.serve_continuous(requests)
        ok_count = 0
        for i, req in enumerate(requests):
            outcome = engine.outcomes[req.request_id]
            # No deadlines and no queue bound here: a request either
            # completes or (rarely) exhausts the whole ranking at call
            # indices where every backend's stream drew a fault.
            if outcome.ok:
                ok_count += 1
                assert np.array_equal(results[req.request_id], expected[i])
            else:
                assert outcome.status == OUTCOME_FAILED
                assert "all candidate backends failed" in outcome.detail
        assert ok_count >= 1


class TestDecoderEngineUnderFaults:
    def _encoder(self, seed=0):
        cfg = tiny_config(
            hidden_size=HIDDEN, num_layers=1, num_heads=4, intermediate_size=128
        )
        encoder = TransformerEncoder.init(cfg, seed=seed)
        sparsify_encoder(encoder, VNMSparsifier(n=2, m=8, v=16))
        return encoder

    def test_survivors_bit_exact_and_kv_blocks_reclaimed(self, rng):
        """Decoder acceptance under chaos: a backend failure mid-decode fails
        only that request; survivors' full decoded sequences are bit-for-bit
        the fault-free :func:`decode_reference`, and every retired request —
        ok or failed — returns its KV blocks, rung slot, and budget
        reservation."""
        prompts = [rng.normal(size=(t, HIDDEN)).astype(np.float32) for t in (5, 9, 9, 17)]
        baseline_encoder = self._encoder()
        expected = [decode_reference(baseline_encoder, p, new_tokens=4) for p in prompts]

        engine = DecoderServingEngine(
            self._encoder(), block_size=4, kv_budget_blocks=64
        )
        # A decode touches the dispatcher once per layer per token — dozens
        # of chances per request to land on an all-backends-faulted call
        # index, so the rate sits lower than the single-forward model test.
        plan = FaultPlan.seeded(
            [b.name for b in engine.dispatcher.backends],
            seed=FAULT_SEED,
            failure_rate=0.1,
        )
        FaultInjector(plan).arm(engine.dispatcher)
        requests = [
            DecodeRequest(f"chaos-{i:04d}", p, new_tokens=4)
            for i, p in enumerate(prompts)
        ]
        results = engine.serve_continuous(requests)

        ok_count = 0
        for i, req in enumerate(requests):
            outcome = engine.outcomes[req.request_id]
            if outcome.ok:
                ok_count += 1
                assert np.array_equal(results[req.request_id], expected[i])
            else:
                assert outcome.status == OUTCOME_FAILED
                assert req.request_id not in results
        assert ok_count >= 1
        assert engine.stats()["dispatch_health"]["failures"] >= 1

        # Retirement — success or failure — reclaims everything it held.
        stats = engine.cache_stats()
        assert stats["sequences"] == 0
        assert engine.batcher.kv_reserved == 0
        assert engine.batcher.pending == 0
        assert engine.stats()["residents"] == 0

    def test_priority_preemption_under_chaos_replays_and_reclaims(self, rng):
        """The SLO chaos cell: seeded faults + priority scheduling +
        preemption on the decoder.  Two replays produce identical outcomes
        and preemption counters; every ``ok`` decode — preempted-and-resumed
        or not — is bit-for-bit the fault-free recompute; and every slot,
        KV block and budget reservation comes back."""
        baseline_encoder = self._encoder()

        def build_requests(local):
            # One rung, one slot: the class-1 requests can only run by
            # preempting the long class-0 decode mid-flight.
            return [
                DecodeRequest(
                    "slow-low",
                    local.normal(size=(5, HIDDEN)).astype(np.float32),
                    new_tokens=8, arrival_us=0.0,
                ),
                DecodeRequest(
                    "vip-a",
                    local.normal(size=(6, HIDDEN)).astype(np.float32),
                    new_tokens=2, arrival_us=2.0, priority_class=1,
                ),
                DecodeRequest(
                    "vip-b",
                    local.normal(size=(7, HIDDEN)).astype(np.float32),
                    new_tokens=3, arrival_us=3.0, priority_class=1,
                ),
            ]

        def run():
            local = np.random.default_rng(FAULT_SEED + 7)
            engine = DecoderServingEngine(
                self._encoder(),
                batcher=ContinuousBatcher.ladder(
                    max_batch_size=1,
                    scheduling=SchedulingConfig(policy="priority", preemption=True),
                ),
            )
            plan = FaultPlan.seeded(
                [b.name for b in engine.dispatcher.backends],
                seed=FAULT_SEED,
                failure_rate=0.05,
            )
            FaultInjector(plan).arm(engine.dispatcher)
            requests = build_requests(local)
            results = engine.serve_continuous(requests, step_us=1.0)
            return engine, requests, results

        first_engine, requests, first_results = run()
        second_engine, _, second_results = run()

        # Replay determinism, per-class outcomes included.
        outcomes = {rid: o.status for rid, o in first_engine.outcomes.items()}
        assert outcomes == {rid: o.status for rid, o in second_engine.outcomes.items()}
        by_class = {0: [], 1: []}
        for req in requests:
            by_class[req.priority_class].append(outcomes[req.request_id])
        assert by_class == {
            0: [first_engine.outcomes["slow-low"].status],
            1: [outcomes["vip-a"], outcomes["vip-b"]],
        }
        assert first_engine.preemptions == second_engine.preemptions
        assert first_engine.resumes == second_engine.resumes
        assert first_engine.preemptions >= 1

        # Survivors are bit-exact — preemption under faults never buys
        # schedule room with numerics.
        ok_count = 0
        for req in requests:
            if first_engine.outcomes[req.request_id].ok:
                ok_count += 1
                expected = decode_reference(baseline_encoder, req.prompt, req.new_tokens)
                assert np.array_equal(first_results[req.request_id], expected)
                assert np.array_equal(second_results[req.request_id], expected)
        assert ok_count >= 1

        # Reclamation: slots, KV, budget, parking lot — all returned.
        for engine in (first_engine, second_engine):
            assert engine.cache_stats()["sequences"] == 0
            assert engine.batcher.kv_reserved == 0
            assert engine.batcher.pending == 0
            assert sum(engine.batcher._occupancy.values()) == 0
            assert engine.stats()["preempted_parked"] == 0

    def test_fault_free_decode_replays_identically_under_disarm(self, rng):
        """Arm-then-disarm restores the unwrapped backends: a decode run
        after disarm is bit-for-bit a never-armed engine's."""
        prompt = rng.normal(size=(6, HIDDEN)).astype(np.float32)
        engine = DecoderServingEngine(self._encoder())
        injector = FaultInjector(
            FaultPlan.seeded(
                [b.name for b in engine.dispatcher.backends],
                seed=FAULT_SEED,
                failure_rate=0.25,
            )
        )
        injector.arm(engine.dispatcher)
        injector.disarm(engine.dispatcher)
        results = engine.serve([DecodeRequest("calm-0000", prompt, new_tokens=3)])
        expected = decode_reference(self._encoder(), prompt, new_tokens=3)
        assert np.array_equal(results["calm-0000"], expected)


class TestChaosSimulation:
    def _requests(self, n=40, seed=None, rate=2000.0, deadline_after_us=None):
        return poisson_arrivals(
            n,
            rate_rps=rate,
            tokens=[5, 12, 30, 7],
            seed=FAULT_SEED if seed is None else seed,
            deadline_after_us=deadline_after_us,
        )

    def test_two_replays_are_identical(self, operand):
        plan = FaultPlan.seeded(
            ("cublas-dense", "spatha-plan"), seed=FAULT_SEED, failure_rate=0.15,
            latency_rate=0.1,
        )
        kwargs = dict(max_queue_depth=8, shed_policy="drop-expired")
        first = simulate_chaos(operand, self._requests(deadline_after_us=4000.0), plan, **kwargs)
        second = simulate_chaos(operand, self._requests(deadline_after_us=4000.0), plan, **kwargs)
        assert first.summary() == second.summary()
        assert first.outcomes == second.outcomes
        assert first.latencies_us == second.latencies_us

    def test_pinned_outcome_counts_for_explicit_plan(self, operand):
        """The deterministic chaos scenario the ISSUE pins: an explicit
        fault plan plus overload produces EXACT outcome counts, stable
        across replays (this test is the replay — it must never flake)."""
        requests = [
            SimulatedRequest(
                f"pin-{i:02d}", tokens=12, arrival_us=0.0 if i < 8 else 5000.0
            )
            for i in range(12)
        ]
        # Call 0 of EVERY backend fails: the first chunk exhausts the whole
        # ranking (4 failed); the burst overflows the depth-4 queue (4
        # shed); the late chunk lands on call 1 and completes (4 ok).
        backends = [b.name for b in KernelDispatcher().backends]
        plan = FaultPlan(
            [FaultSpec(backend=n, kind="transient", at_call=0, count=1) for n in backends]
        )
        reports = [
            simulate_chaos(operand, requests, plan, max_queue_depth=4)
            for _ in range(2)
        ]
        assert reports[0].counts() == reports[1].counts()
        assert reports[0].counts() == {"ok": 4, "failed": 4, "timed_out": 0, "shed": 4}
        assert reports[0].availability == 4 / 12
        assert reports[0].summary() == reports[1].summary()

    def test_per_class_breakout_replays_identically_under_fault_seed(self, operand):
        """Chaos + priority traffic (the ISSUE's SLO satellite): two replays
        of a seeded fault plan over a two-class trace produce identical
        per-class outcome breakdowns."""
        plan = FaultPlan.seeded(
            ("cublas-dense", "spatha-plan"), seed=FAULT_SEED, failure_rate=0.15,
            latency_rate=0.1,
        )

        def trace():
            low = self._requests(n=24, deadline_after_us=4000.0)
            high = poisson_arrivals(
                8, rate_rps=500.0, tokens=[5, 12], seed=FAULT_SEED + 1,
                deadline_after_us=4000.0, prefix="vip", priority_class=1,
            )
            return sorted(low + high, key=lambda r: (r.arrival_us, r.request_id))

        kwargs = dict(max_queue_depth=8, shed_policy="drop-expired")
        first = simulate_chaos(operand, trace(), plan, **kwargs)
        second = simulate_chaos(operand, trace(), plan, **kwargs)
        assert first.per_class() == second.per_class()
        assert set(first.per_class()) == {0, 1}
        per_class = first.per_class()
        assert per_class[0]["requests"] == 24
        assert per_class[1]["requests"] == 8
        total = first.counts()
        for state in ("ok", "failed", "timed_out", "shed"):
            assert per_class[0][state] + per_class[1][state] == total[state]
        assert "per_class" in first.summary()

    def test_pinned_per_class_counts_for_explicit_plan(self, operand):
        """Two-class pinned cell: with every backend's call 0 failing and a
        depth-4 queue, the first chunk fails, the burst overflow sheds, and
        the late wave completes — with EXACT per-class counts that must
        never move across replays."""
        requests = [
            SimulatedRequest(
                f"pin-{i:02d}",
                tokens=12,
                arrival_us=0.0 if i < 8 else 5000.0,
                priority_class=i % 2,
            )
            for i in range(12)
        ]
        backends = [b.name for b in KernelDispatcher().backends]
        plan = FaultPlan(
            [FaultSpec(backend=n, kind="transient", at_call=0, count=1) for n in backends]
        )
        reports = [
            simulate_chaos(operand, requests, plan, max_queue_depth=4)
            for _ in range(2)
        ]
        assert reports[0].per_class() == reports[1].per_class()
        per_class = reports[0].per_class()
        # The burst alternates classes, so every phase splits evenly: the
        # 4-failed first chunk, the 4 shed overflow, the 4 ok stragglers.
        for cls in (0, 1):
            assert per_class[cls]["requests"] == 6
            assert per_class[cls]["failed"] == 2
            assert per_class[cls]["shed"] == 2
            assert per_class[cls]["ok"] == 2
            assert per_class[cls]["timed_out"] == 0
            assert per_class[cls]["shed_rate"] == pytest.approx(2 / 6)
            assert per_class[cls]["violation_rate"] == 0.0

    def test_fault_free_plan_is_fully_available(self, operand):
        report = simulate_chaos(operand, self._requests(n=16), FaultPlan())
        assert report.counts() == {"ok": 16, "failed": 0, "timed_out": 0, "shed": 0}
        assert report.availability == 1.0
        assert report.failovers == 0
        assert report.injected_failures == 0

    def test_quarantine_surfaces_in_report(self, operand):
        # Persistently fail whichever backend wins the traffic's buckets so
        # the breaker actually sees consecutive failures.
        chosen = {
            KernelDispatcher().dispatch(operand, c).backend for c in (8, 16, 32)
        }
        plan = FaultPlan([FaultSpec(backend=n, kind="persistent") for n in chosen])
        report = simulate_chaos(
            operand, self._requests(n=16), plan, failure_threshold=2, probe_interval=2
        )
        assert report.quarantines >= 1
        assert report.failovers >= 1
        assert report.availability == 1.0  # fallback ranking absorbs it

    def test_p999_on_known_distribution(self):
        """p999 satellite: pin the extreme tail on a synthetic distribution
        where the answer is known analytically (linear interpolation over
        1..1000 puts p99.9 at 999.001)."""
        latencies = {f"r{i:04d}": float(i) for i in range(1, 1001)}
        report = ServingSimReport(
            window_us=0.0,
            num_requests=1000,
            num_batches=1000,
            makespan_us=1_000_000.0,
            latencies_us=latencies,
        )
        assert report.p999_latency_us == pytest.approx(999.001)
        assert report.p99_latency_us == pytest.approx(990.01)
        assert "p999_latency_us" in report.summary()
