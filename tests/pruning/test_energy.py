"""Tests for the energy metric (paper Section 5 / Figure 11)."""

import numpy as np
import pytest

from repro.pruning.energy import (
    check_energy_ordering,
    energy_metric,
    energy_study,
    ideal_energy,
    vector_wise_energy,
    vnm_energy,
)
from repro.pruning.magnitude import magnitude_mask


@pytest.fixture
def weight(rng):
    return rng.normal(size=(64, 64))


class TestEnergyMetric:
    def test_full_mask_energy_one(self, weight):
        assert energy_metric(weight, np.ones_like(weight, dtype=bool)) == pytest.approx(1.0)

    def test_empty_mask_energy_zero(self, weight):
        assert energy_metric(weight, np.zeros_like(weight, dtype=bool)) == pytest.approx(0.0)

    def test_bounded_between_zero_and_one(self, weight):
        mask = magnitude_mask(weight, 0.6)
        assert 0.0 <= energy_metric(weight, mask) <= 1.0

    def test_shape_mismatch(self, weight):
        with pytest.raises(ValueError):
            energy_metric(weight, np.ones((2, 2), dtype=bool))

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError):
            energy_metric(np.zeros((4, 4)), np.ones((4, 4), dtype=bool))


class TestPolicies:
    def test_ideal_is_optimal_at_fixed_sparsity(self, weight):
        """No structured policy can retain more energy than unstructured magnitude."""
        s = 0.75
        ideal = ideal_energy(weight, s)
        assert vnm_energy(weight, v=16, n=2, m=8) <= ideal + 1e-9
        assert vnm_energy(weight, v=1, n=2, m=8) <= ideal + 1e-9
        assert vector_wise_energy(weight, s, l=8) <= ideal + 1e-9

    def test_ideal_energy_decreases_with_sparsity(self, weight):
        energies = [ideal_energy(weight, s) for s in (0.5, 0.75, 0.9, 0.95)]
        assert all(b <= a for a, b in zip(energies, energies[1:]))

    def test_plain_nm_beats_larger_v(self, weight):
        """Smaller V is less constrained, so it retains at least as much energy."""
        e1 = vnm_energy(weight, v=1, n=2, m=8)
        e16 = vnm_energy(weight, v=16, n=2, m=8)
        e64 = vnm_energy(weight, v=64, n=2, m=8)
        assert e1 >= e16 - 1e-9
        assert e16 >= e64 - 1e-9

    def test_vnm_robust_to_vector_length(self):
        """Key paper claim: even V=128 preserves more energy than vw_8 / vw_4.

        Checked on a trained-like layer (column outliers), the setting the
        paper's Figure 11 uses.
        """
        from repro.pruning.second_order.proxy import synthesize_trained_layer

        w = synthesize_trained_layer(rows=128, cols=256, seed=8)
        e_vnm_128 = vnm_energy(w, v=128, n=2, m=8)
        assert e_vnm_128 > vector_wise_energy(w, 0.75, l=8)
        assert e_vnm_128 > vector_wise_energy(w, 0.75, l=4)
        # ... and the degradation from V=1 to V=128 stays modest (< 25% relative).
        e_vnm_1 = vnm_energy(w, v=1, n=2, m=8)
        assert (e_vnm_1 - e_vnm_128) / e_vnm_1 < 0.25

    def test_longer_vectors_retain_less_energy(self, weight):
        e4 = vector_wise_energy(weight, 0.75, l=4)
        e32 = vector_wise_energy(weight, 0.75, l=32)
        assert e32 <= e4 + 1e-9


class TestEnergyStudy:
    def test_schema_and_lengths(self, weight):
        study = energy_study(weight, sparsities=(0.5, 0.75), v_values=(1, 16), vw_lengths=(4, 8))
        assert set(study) == {"ideal", "1:N:M", "16:N:M", "vw_4", "vw_8"}
        assert all(len(v) == 2 for v in study.values())

    def test_ideal_dominates(self, rng):
        # 80 columns are divisible by every M the sparsity levels imply
        # (4, 8, 20), so no padding artifacts blur the comparison.
        weight = rng.normal(size=(64, 80))
        study = energy_study(weight, sparsities=(0.5, 0.75, 0.9), v_values=(1, 16, 32), vw_lengths=(4, 8))
        assert check_energy_ordering(study)

    def test_ordering_check_detects_violation(self):
        study = {"ideal": [0.5, 0.4], "x": [0.6, 0.3]}
        assert not check_energy_ordering(study)

    def test_ordering_check_requires_ideal(self):
        with pytest.raises(KeyError):
            check_energy_ordering({"x": [1.0]})

    def test_ordering_check_length_mismatch(self):
        with pytest.raises(ValueError):
            check_energy_ordering({"ideal": [1.0, 0.9], "x": [0.5]})
