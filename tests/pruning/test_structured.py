"""Tests for vector-wise, block-wise, N:M and V:N:M pruning."""

import numpy as np
import pytest

from repro.pruning.block_wise import block_scores, block_wise_mask, block_wise_prune
from repro.pruning.masks import check_mask_nm, check_mask_vnm, mask_sparsity
from repro.pruning.nm import nm_mask, nm_pattern_for_sparsity, nm_prune
from repro.pruning.vector_wise import columns_per_row_block, vector_scores, vector_wise_mask, vector_wise_prune
from repro.pruning.vnm import pad_to_vnm_shape, select_block_columns, vnm_mask, vnm_prune, vnm_sparsity


class TestVectorWise:
    def test_whole_vectors_pruned(self, rng):
        w = rng.normal(size=(32, 16))
        mask = vector_wise_mask(w, 0.5, l=8)
        # Within every length-8 vertical vector, all entries share the same fate.
        vec = mask.reshape(4, 8, 16)
        assert np.all(vec.all(axis=1) | (~vec).all(axis=1))

    def test_target_sparsity_approximate(self, rng):
        w = rng.normal(size=(64, 32))
        mask = vector_wise_mask(w, 0.75, l=8)
        assert mask_sparsity(mask) == pytest.approx(0.75, abs=0.05)

    def test_lowest_saliency_vectors_removed(self):
        w = np.ones((8, 2))
        w[:4, 0] = 0.01  # the weakest vector
        mask = vector_wise_mask(w, 0.25, l=4)
        assert not mask[:4, 0].any()
        assert mask[:4, 1].all()

    def test_scores_shapes_and_norms(self, rng):
        w = rng.normal(size=(16, 8))
        l1 = vector_scores(w, 4, "l1")
        l2 = vector_scores(w, 4, "l2")
        assert l1.shape == (4, 8)
        assert np.all(l2 <= l1 + 1e-9)
        with pytest.raises(ValueError):
            vector_scores(w, 4, "linf")

    def test_rows_not_divisible(self, rng):
        with pytest.raises(ValueError):
            vector_wise_mask(rng.normal(size=(10, 4)), 0.5, l=4)

    def test_load_imbalance_statistic(self, rng):
        w = rng.normal(size=(32, 16))
        mask = vector_wise_mask(w, 0.6, l=8)
        counts = columns_per_row_block(mask, l=8)
        assert counts.shape == (4,)
        assert counts.sum() == mask.reshape(4, 8, 16).any(axis=1).sum()

    def test_prune_wrapper(self, rng):
        res = vector_wise_prune(rng.normal(size=(16, 8)), 0.5, l=4)
        assert res.target_sparsity == 0.5


class TestBlockWise:
    def test_whole_blocks_pruned(self, rng):
        w = rng.normal(size=(16, 16))
        mask = block_wise_mask(w, 0.5, block=4)
        blocks = mask.reshape(4, 4, 4, 4).transpose(0, 2, 1, 3).reshape(16, 16)
        tiles = mask.reshape(4, 4, 4, 4)
        _ = blocks
        for i in range(4):
            for j in range(4):
                tile = tiles[i, :, j, :]
                assert tile.all() or not tile.any()

    def test_target_sparsity(self, rng):
        w = rng.normal(size=(32, 32))
        assert mask_sparsity(block_wise_mask(w, 0.75, block=8)) == pytest.approx(0.75, abs=0.1)

    def test_scores_shape(self, rng):
        assert block_scores(rng.normal(size=(16, 16)), 4).shape == (4, 4)

    def test_shape_must_divide(self, rng):
        with pytest.raises(ValueError):
            block_wise_mask(rng.normal(size=(10, 16)), 0.5, block=4)

    def test_prune_wrapper(self, rng):
        res = block_wise_prune(rng.normal(size=(16, 16)), 0.5, block=4)
        assert 0.3 < res.sparsity < 0.7


class TestNM:
    def test_exact_pattern(self, rng):
        w = rng.normal(size=(16, 32))
        mask = nm_mask(w, 2, 4)
        assert check_mask_nm(mask, 2, 4)
        assert mask_sparsity(mask) == pytest.approx(0.5)

    def test_keeps_largest_magnitudes(self):
        w = np.array([[1.0, -4.0, 0.5, 3.0]])
        mask = nm_mask(w, 2, 4)
        assert list(mask[0]) == [False, True, False, True]

    def test_high_sparsity_patterns(self, rng):
        w = rng.normal(size=(8, 40))
        mask = nm_mask(w, 2, 10)
        assert check_mask_nm(mask, 2, 10)
        assert mask_sparsity(mask) == pytest.approx(0.8)

    def test_invalid_pattern(self, rng):
        with pytest.raises(ValueError):
            nm_mask(rng.normal(size=(4, 8)), 5, 4)
        with pytest.raises(ValueError):
            nm_mask(rng.normal(size=(4, 9)), 2, 4)

    def test_prune_wrapper(self, rng):
        res = nm_prune(rng.normal(size=(8, 16)), 2, 8)
        assert res.target_sparsity == pytest.approx(0.75)

    def test_pattern_for_sparsity(self):
        assert nm_pattern_for_sparsity(0.5) == (2, 4)
        assert nm_pattern_for_sparsity(0.8) == (2, 10)
        assert nm_pattern_for_sparsity(0.9) == (2, 20)
        assert nm_pattern_for_sparsity(0.95) == (2, 40)
        assert nm_pattern_for_sparsity(0.98) == (2, 100)

    def test_pattern_for_sparsity_invalid(self):
        with pytest.raises(ValueError):
            nm_pattern_for_sparsity(1.0)


class TestVNM:
    def test_pattern_constraints_hold(self, rng):
        w = rng.normal(size=(64, 64))
        mask = vnm_mask(w, v=16, n=2, m=16)
        assert check_mask_vnm(mask, v=16, n=2, m=16)
        assert mask_sparsity(mask) == pytest.approx(1 - 2 / 16)

    def test_exactly_n_per_group_per_row(self, rng):
        w = rng.normal(size=(32, 32))
        mask = vnm_mask(w, v=8, n=2, m=8)
        per_group = mask.reshape(32, 4, 8).sum(axis=2)
        assert np.all(per_group == 2)

    def test_survivors_confined_to_four_columns_per_block(self, rng):
        w = rng.normal(size=(32, 32))
        mask = vnm_mask(w, v=8, n=2, m=8)
        blocks = mask.reshape(4, 8, 4, 8)
        used_cols = blocks.any(axis=1).sum(axis=2)
        assert np.all(used_cols <= 4)

    def test_column_selection_prefers_heavy_columns(self):
        w = np.full((8, 8), 0.01)
        w[:, [1, 3, 5, 7]] = 10.0  # four obviously dominant columns
        sel = select_block_columns(w, v=8, m=8)
        assert list(sel[0, 0]) == [1, 3, 5, 7]

    def test_v_equal_rows_is_single_block(self, rng):
        w = rng.normal(size=(16, 16))
        mask = vnm_mask(w, v=16, n=2, m=8)
        assert check_mask_vnm(mask, v=16, n=2, m=8)

    def test_invalid_configurations(self, rng):
        w = rng.normal(size=(16, 16))
        with pytest.raises(ValueError):
            vnm_mask(w, v=5, n=2, m=8)  # rows not divisible by v
        with pytest.raises(ValueError):
            vnm_mask(w, v=8, n=2, m=3)  # m < 4

    def test_prune_wrapper_and_sparsity(self, rng):
        res = vnm_prune(rng.normal(size=(32, 32)), v=8, n=2, m=8)
        assert res.target_sparsity == pytest.approx(0.75)
        assert vnm_sparsity(2, 8) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            vnm_sparsity(5, 4)

    def test_pad_to_vnm_shape(self, rng):
        w = rng.normal(size=(30, 37))
        padded, orig = pad_to_vnm_shape(w, v=8, m=8)
        assert orig == (30, 37)
        assert padded.shape == (32, 40)
        assert np.allclose(padded[:30, :37], w)
        assert np.all(padded[30:, :] == 0)

    def test_pad_noop_when_divisible(self, rng):
        w = rng.normal(size=(32, 40))
        padded, _ = pad_to_vnm_shape(w, v=8, m=8)
        assert padded.shape == w.shape
