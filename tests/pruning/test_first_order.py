"""Tests for the first-order (movement / PLATON) pruning criteria."""

import numpy as np
import pytest

from repro.pruning.first_order import (
    first_order_mask,
    first_order_nm_mask,
    first_order_prune,
    first_order_vnm_mask,
    movement_scores,
    platon_scores,
)
from repro.pruning.masks import check_mask_nm, check_mask_vnm, mask_sparsity
from repro.pruning.second_order.fisher import synthetic_gradients


@pytest.fixture
def layer(rng):
    return rng.normal(size=(32, 64))


@pytest.fixture
def grads(layer):
    return synthetic_gradients(layer, num_samples=16, seed=1)


class TestScores:
    def test_movement_scores_shape(self, layer, grads):
        assert movement_scores(layer, grads).shape == layer.shape

    def test_movement_sign_convention(self):
        """A weight pushed away from zero (w and grad opposite signs) scores high."""
        w = np.array([[1.0, 1.0]])
        grads = np.array([[-0.5, 0.5]])  # first weight grows, second shrinks
        scores = movement_scores(w, grads)
        assert scores[0, 0] > scores[0, 1]

    def test_platon_scores_nonnegative(self, layer, grads):
        assert np.all(platon_scores(layer, grads) >= 0)

    def test_platon_uncertainty_bonus(self, layer, grads):
        with_u = platon_scores(layer, grads, uncertainty_weight=1.0)
        without = platon_scores(layer, grads, uncertainty_weight=0.0)
        assert np.all(with_u >= without - 1e-12)

    def test_gradient_shape_validated(self, layer):
        with pytest.raises(ValueError):
            movement_scores(layer, np.zeros((4, 7)))
        with pytest.raises(ValueError):
            platon_scores(layer, np.zeros((0, layer.size)))

    def test_negative_uncertainty_rejected(self, layer, grads):
        with pytest.raises(ValueError):
            platon_scores(layer, grads, uncertainty_weight=-1.0)


class TestMasks:
    def test_unstructured_mask_hits_sparsity(self, layer, grads):
        mask = first_order_mask(layer, grads, 0.75, criterion="movement")
        assert mask_sparsity(mask) == pytest.approx(0.75, abs=0.01)

    def test_nm_mask_structurally_valid(self, layer, grads):
        mask = first_order_nm_mask(layer, grads, n=2, m=8, criterion="platon")
        assert check_mask_nm(mask, 2, 8)

    def test_vnm_mask_structurally_valid(self, layer, grads):
        mask = first_order_vnm_mask(layer, grads, v=16, n=2, m=8, criterion="platon")
        assert check_mask_vnm(mask, v=16, n=2, m=8)

    def test_unknown_criterion(self, layer, grads):
        with pytest.raises(ValueError):
            first_order_mask(layer, grads, 0.5, criterion="taylor3")
        with pytest.raises(ValueError):
            first_order_nm_mask(layer, grads, criterion="taylor3")
        with pytest.raises(ValueError):
            first_order_vnm_mask(layer, grads, v=16, criterion="taylor3")

    def test_differs_from_pure_magnitude(self, layer, grads):
        """Gradient information must actually influence the selection."""
        from repro.pruning.magnitude import magnitude_mask

        fo = first_order_mask(layer, grads, 0.5, criterion="movement")
        mag = magnitude_mask(layer, 0.5)
        assert not np.array_equal(fo, mag)


class TestPruneWrapper:
    def test_unstructured(self, layer, grads):
        res = first_order_prune(layer, grads, sparsity=0.6)
        assert res.target_sparsity == 0.6
        assert res.sparsity == pytest.approx(0.6, abs=0.01)

    def test_structured_nm(self, layer, grads):
        res = first_order_prune(layer, grads, n=2, m=8)
        assert check_mask_nm(res.mask, 2, 8)
        assert res.target_sparsity == pytest.approx(0.75)

    def test_structured_vnm(self, layer, grads):
        res = first_order_prune(layer, grads, v=16, n=2, m=8, criterion="platon")
        assert check_mask_vnm(res.mask, v=16, n=2, m=8)

    def test_argument_validation(self, layer, grads):
        with pytest.raises(ValueError):
            first_order_prune(layer, grads)  # neither sparsity nor pattern
        with pytest.raises(ValueError):
            first_order_prune(layer, grads, sparsity=0.5, n=2, m=8)  # both
