"""Tests for unstructured magnitude pruning and GMP."""

import numpy as np
import pytest

from repro.pruning.magnitude import gmp_prune, gmp_schedule, magnitude_mask, magnitude_prune


class TestMagnitudeMask:
    def test_exact_count_pruned(self, rng):
        w = rng.normal(size=(10, 10))
        mask = magnitude_mask(w, 0.37)
        assert (~mask).sum() == round(0.37 * 100)

    def test_smallest_magnitudes_removed(self):
        w = np.array([[0.1, -5.0, 0.2, 3.0]])
        mask = magnitude_mask(w, 0.5)
        assert list(mask[0]) == [False, True, False, True]

    def test_zero_sparsity_keeps_all(self, rng):
        w = rng.normal(size=(4, 4))
        assert magnitude_mask(w, 0.0).all()

    def test_full_sparsity_removes_all(self, rng):
        w = rng.normal(size=(4, 4))
        assert not magnitude_mask(w, 1.0).any()

    def test_invalid_sparsity(self, rng):
        with pytest.raises(ValueError):
            magnitude_mask(rng.normal(size=(4, 4)), 1.5)

    def test_deterministic(self, rng):
        w = rng.normal(size=(16, 16))
        assert np.array_equal(magnitude_mask(w, 0.5), magnitude_mask(w, 0.5))

    def test_prune_wrapper(self, rng):
        w = rng.normal(size=(8, 8))
        res = magnitude_prune(w, 0.5)
        assert res.sparsity == pytest.approx(0.5)
        assert np.count_nonzero(res.pruned_weights) == res.kept


class TestGmpSchedule:
    def test_ends_at_target(self):
        sched = gmp_schedule(0.9, 5)
        assert sched[-1] == pytest.approx(0.9)

    def test_monotone_increasing(self):
        sched = gmp_schedule(0.9, 10, initial_sparsity=0.1)
        assert all(b >= a for a, b in zip(sched, sched[1:]))

    def test_starts_above_initial(self):
        sched = gmp_schedule(0.8, 4, initial_sparsity=0.2)
        assert sched[0] >= 0.2

    def test_single_step(self):
        assert gmp_schedule(0.5, 1) == [pytest.approx(0.5)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gmp_schedule(0.5, 0)
        with pytest.raises(ValueError):
            gmp_schedule(0.5, 4, initial_sparsity=0.9)
        with pytest.raises(ValueError):
            gmp_schedule(0.5, 4, exponent=0)


class TestGmpPrune:
    def test_final_sparsity_reached(self, rng):
        w = rng.normal(size=(20, 20))
        results = gmp_prune(w, 0.8, num_steps=5)
        assert len(results) == 5
        assert results[-1].sparsity == pytest.approx(0.8, abs=0.02)

    def test_masks_are_monotone(self, rng):
        """A weight pruned at step t stays pruned afterwards."""
        w = rng.normal(size=(20, 20))
        results = gmp_prune(w, 0.9, num_steps=6)
        for prev, cur in zip(results, results[1:]):
            assert np.all(cur.mask <= prev.mask)

    def test_sparsity_non_decreasing(self, rng):
        w = rng.normal(size=(20, 20))
        results = gmp_prune(w, 0.9, num_steps=6)
        sparsities = [r.sparsity for r in results]
        assert all(b >= a - 1e-9 for a, b in zip(sparsities, sparsities[1:]))
