"""Tests for the second-order group saliency solvers."""

import numpy as np
import pytest

from repro.pruning.second_order.saliency import (
    canonical_nm_basis,
    canonical_pair_basis,
    group_saliency,
    obs_weight_update,
    solve_group,
    solve_group_combinatorial,
    solve_group_pairwise,
)


@pytest.fixture
def diag_fisher_inv():
    """Diagonal inverse Fisher: saliency reduces to OBD (w^2 / 2 / diag)."""
    return np.diag([1.0, 0.5, 2.0, 1.0])


class TestGroupSaliency:
    def test_empty_set_zero(self, diag_fisher_inv):
        assert group_saliency(np.ones(4), diag_fisher_inv, []) == 0.0

    def test_diagonal_case_matches_obd(self, diag_fisher_inv):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        # rho_{i} = 0.5 * w_i^2 / (F^-1)_ii
        assert group_saliency(w, diag_fisher_inv, [0]) == pytest.approx(0.5 * 1.0 / 1.0)
        assert group_saliency(w, diag_fisher_inv, [1]) == pytest.approx(0.5 * 4.0 / 0.5)
        assert group_saliency(w, diag_fisher_inv, [2]) == pytest.approx(0.5 * 9.0 / 2.0)

    def test_superadditive_for_diagonal(self, diag_fisher_inv):
        w = np.array([1.0, 2.0, 3.0, 4.0])
        joint = group_saliency(w, diag_fisher_inv, [0, 1])
        assert joint == pytest.approx(
            group_saliency(w, diag_fisher_inv, [0]) + group_saliency(w, diag_fisher_inv, [1])
        )

    def test_out_of_range_index(self, diag_fisher_inv):
        with pytest.raises(IndexError):
            group_saliency(np.ones(4), diag_fisher_inv, [7])

    def test_shape_check(self):
        with pytest.raises(ValueError):
            group_saliency(np.ones(4), np.eye(3), [0])


class TestObsWeightUpdate:
    def test_pruned_weights_exactly_zero(self, rng):
        w = rng.normal(size=6)
        grads = rng.normal(size=(20, 6))
        f_inv = np.linalg.inv(grads.T @ grads / 20 + 1e-3 * np.eye(6))
        delta = obs_weight_update(w, f_inv, [1, 4])
        updated = w + delta
        assert updated[1] == pytest.approx(0.0, abs=1e-12)
        assert updated[4] == pytest.approx(0.0, abs=1e-12)

    def test_survivors_move_with_correlations(self, rng):
        w = rng.normal(size=4)
        grads = rng.normal(size=(20, 4))
        f_inv = np.linalg.inv(grads.T @ grads / 20 + 1e-3 * np.eye(4))
        delta = obs_weight_update(w, f_inv, [0])
        # With a non-diagonal inverse Fisher the survivors compensate.
        assert np.any(np.abs(delta[1:]) > 1e-12)

    def test_empty_set_no_update(self):
        assert np.allclose(obs_weight_update(np.ones(3), np.eye(3), []), 0.0)


class TestSolvers:
    def test_combinatorial_picks_minimal_saliency(self, diag_fisher_inv):
        w = np.array([0.1, 5.0, 0.2, 4.0])
        decision = solve_group_combinatorial(w, diag_fisher_inv, keep=2)
        assert set(decision.pruned_local) == {0, 2}

    def test_pairwise_matches_combinatorial_on_diagonal_fisher(self, rng):
        """With a diagonal Fisher there are no interactions, so the greedy
        pair-wise solver must find the exact optimum."""
        diag = np.diag(rng.uniform(0.5, 2.0, size=8))
        w = rng.normal(size=8)
        exact = solve_group_combinatorial(w, diag, keep=2)
        greedy = solve_group_pairwise(w, diag, keep=2)
        assert set(greedy.pruned_local) == set(exact.pruned_local)

    def test_pairwise_close_to_exact_with_correlations(self, rng):
        grads = rng.normal(size=(32, 8))
        f_inv = np.linalg.inv(grads.T @ grads / 32 + 1e-2 * np.eye(8))
        w = rng.normal(size=8)
        exact = solve_group_combinatorial(w, f_inv, keep=2)
        greedy = solve_group_pairwise(w, f_inv, keep=2)
        # The relaxation may differ but must not be dramatically worse.
        assert greedy.saliency <= exact.saliency * 3.0 + 1e-9

    def test_keep_all_prunes_nothing(self, diag_fisher_inv):
        decision = solve_group_pairwise(np.ones(4), diag_fisher_inv, keep=4)
        assert decision.pruned_local == ()
        assert decision.saliency == 0.0

    def test_invalid_keep(self, diag_fisher_inv):
        with pytest.raises(ValueError):
            solve_group_combinatorial(np.ones(4), diag_fisher_inv, keep=0)
        with pytest.raises(ValueError):
            solve_group_pairwise(np.ones(4), diag_fisher_inv, keep=9)

    def test_auto_dispatch(self, rng):
        diag = np.diag(np.ones(4))
        small = solve_group(np.ones(4), diag, keep=2, method="auto", combinatorial_limit=8)
        assert len(small.pruned_local) == 2
        big_fisher = np.diag(np.ones(16))
        big = solve_group(rng.normal(size=16), big_fisher, keep=2, method="auto", combinatorial_limit=8)
        assert len(big.pruned_local) == 14

    def test_unknown_method(self, diag_fisher_inv):
        with pytest.raises(ValueError):
            solve_group(np.ones(4), diag_fisher_inv, keep=2, method="magic")


class TestCanonicalBases:
    def test_pair_basis_matches_paper(self):
        assert canonical_pair_basis() == [[1, 0], [0, 1], [1, 1]]

    def test_nm_basis_24_has_six_patterns(self):
        basis = canonical_nm_basis(2, 4)
        assert len(basis) == 6
        assert [1, 1, 0, 0] in basis
        assert [0, 0, 1, 1] in basis
        assert all(sum(row) == 2 for row in basis)

    def test_nm_basis_invalid(self):
        with pytest.raises(ValueError):
            canonical_nm_basis(5, 4)
