"""Equivalence tests for the batched second-order pruners.

The vectorized pruners must reproduce the retained loop references —
identical masks and (to floating-point tolerance) identical compensated
weights — across solvers, patterns, Fisher blockings and edge cases.
"""

import numpy as np
import pytest

from repro.pruning.second_order.fisher import (
    estimate_block_fisher,
    estimate_block_fisher_reference,
    synthetic_gradients,
)
from repro.pruning.second_order.obs_vnm import (
    SecondOrderConfig,
    second_order_nm_prune,
    second_order_nm_prune_reference,
    second_order_vnm_prune,
    second_order_vnm_prune_reference,
)
from repro.pruning.second_order.saliency import (
    solve_group,
    solve_groups,
)


def assert_results_match(vec, ref):
    assert np.array_equal(vec.mask, ref.mask)
    assert np.allclose(vec.pruned_weights, ref.pruned_weights, atol=1e-10, rtol=1e-10)
    assert vec.target_sparsity == ref.target_sparsity


class TestBatchedSolvers:
    @pytest.mark.parametrize("method", ["combinatorial", "pairwise"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_solve_groups_matches_solve_group(self, method, seed):
        rng = np.random.default_rng(seed)
        num_groups, m, keep = 12, 6, 2
        w = rng.normal(size=(num_groups, m))
        # Random SPD inverse-Fisher stacks.
        base = rng.normal(size=(num_groups, m, m))
        f_inv = base @ base.transpose(0, 2, 1) + 0.5 * np.eye(m)
        pruned_sets, updates = solve_groups(w, f_inv, keep=keep, method=method)
        for g in range(num_groups):
            decision = solve_group(w[g], f_inv[g], keep=keep, method=method)
            assert tuple(pruned_sets[g]) == decision.pruned_local
            assert np.allclose(updates[g], decision.weight_update, atol=1e-10)

    def test_keep_all_returns_empty_sets(self):
        w = np.ones((3, 4))
        f_inv = np.broadcast_to(np.eye(4), (3, 4, 4)).copy()
        pruned_sets, updates = solve_groups(w, f_inv, keep=4)
        assert pruned_sets.shape == (3, 0)
        assert np.array_equal(updates, np.zeros((3, 4)))

    def test_zero_weight_groups_agree(self):
        """Degenerate all-zero groups: every pattern ties; both paths must
        pick the same (first) one."""
        w = np.zeros((4, 4))
        f_inv = np.broadcast_to(np.eye(4), (4, 4, 4)).copy()
        for method in ("combinatorial", "pairwise"):
            pruned_sets, updates = solve_groups(w, f_inv, keep=2, method=method)
            for g in range(4):
                decision = solve_group(w[g], f_inv[g], keep=2, method=method)
                assert tuple(pruned_sets[g]) == decision.pruned_local
            assert np.allclose(updates, 0.0)


class TestNMPruneEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=2, m=4),
            dict(n=2, m=8, config=SecondOrderConfig(method="pairwise")),
            dict(n=1, m=4, config=SecondOrderConfig(apply_update=False)),
            dict(n=2, m=8, config=SecondOrderConfig(fisher_block_size=16)),
            dict(n=4, m=4),  # keep everything
        ],
    )
    def test_matches_reference(self, seed, kwargs):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(6, 16))
        grads = synthetic_gradients(w, num_samples=8, seed=seed)
        vec = second_order_nm_prune(w, grads=grads, **kwargs)
        ref = second_order_nm_prune_reference(w, grads=grads, **kwargs)
        assert_results_match(vec, ref)

    def test_single_group_matrix(self, rng):
        w = rng.normal(size=(1, 4))
        vec = second_order_nm_prune(w, n=2, m=4)
        ref = second_order_nm_prune_reference(w, n=2, m=4)
        assert_results_match(vec, ref)


class TestVNMPruneEquivalence:
    @pytest.mark.parametrize("seed", [0, 5])
    @pytest.mark.parametrize(
        "case",
        [
            dict(v=2, n=2, m=8),
            dict(v=4, n=2, m=8, config=SecondOrderConfig(method="pairwise")),
            dict(v=2, n=1, m=4),
            dict(v=8, n=2, m=16, config=SecondOrderConfig(apply_update=False)),
            dict(v=1, n=2, m=8),  # falls back to the N:M pruner
            dict(v=2, n=4, m=8),  # keep all four selected columns
        ],
    )
    def test_matches_reference(self, seed, case):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(8, 32))
        grads = synthetic_gradients(w, num_samples=8, seed=seed + 1)
        vec = second_order_vnm_prune(w, grads=grads, **case)
        ref = second_order_vnm_prune_reference(w, grads=grads, **case)
        assert_results_match(vec, ref)

    def test_single_block_matrix(self, rng):
        w = rng.normal(size=(2, 8))
        vec = second_order_vnm_prune(w, v=2, n=2, m=8)
        ref = second_order_vnm_prune_reference(w, v=2, n=2, m=8)
        assert_results_match(vec, ref)

    def test_result_obeys_vnm_pattern(self, rng):
        from repro.formats.vnm import check_vnm_pattern

        w = rng.normal(size=(8, 32))
        res = second_order_vnm_prune(w, v=4, n=2, m=8)
        assert check_vnm_pattern(res.pruned_weights, v=4, n=2, m=8)


class TestBatchedFisher:
    @pytest.mark.parametrize("block_size", [4, 8, 16])
    def test_matches_reference(self, rng, block_size):
        w = rng.normal(size=(4, 16))
        grads = synthetic_gradients(w, num_samples=6, seed=2)
        vec = estimate_block_fisher(grads, w.shape, block_size=block_size)
        ref = estimate_block_fisher_reference(grads, w.shape, block_size=block_size)
        assert np.allclose(vec.inverse_blocks, ref.inverse_blocks, atol=1e-12, rtol=1e-12)
        assert np.allclose(vec.diagonal(), ref.diagonal())

    def test_gather_submatrices_matches_scalar_api(self, rng):
        w = rng.normal(size=(4, 16))
        grads = synthetic_gradients(w, num_samples=6, seed=4)
        fisher = estimate_block_fisher(grads, w.shape, block_size=8)
        flat_start = np.array([0, 16, 40])
        offsets = np.array([[0, 2, 5], [1, 3, 4], [0, 1, 7]])
        batched = fisher.gather_submatrices(flat_start, offsets)
        for i in range(3):
            block_idx = int(flat_start[i]) // 8
            local = flat_start[i] % 8 + offsets[i]
            assert np.array_equal(batched[i], fisher.inverse_submatrix(block_idx, local))

    def test_gather_rejects_block_straddling_groups(self, rng):
        w = rng.normal(size=(2, 8))
        grads = synthetic_gradients(w, num_samples=4, seed=0)
        fisher = estimate_block_fisher(grads, w.shape, block_size=4)
        with pytest.raises(IndexError):
            fisher.gather_submatrices(np.array([2]), np.array([[0, 1, 2, 3]]))
