"""Property-based tests for pruning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.pruning.energy import energy_metric, ideal_energy
from repro.pruning.magnitude import magnitude_mask
from repro.pruning.masks import check_mask_nm, check_mask_vnm, mask_sparsity
from repro.pruning.nm import nm_mask
from repro.pruning.vector_wise import vector_wise_mask
from repro.pruning.vnm import vnm_mask


def weight_matrices():
    return st.tuples(st.integers(1, 4), st.integers(1, 4)).flatmap(
        lambda dims: hnp.arrays(
            dtype=np.float64,
            shape=(dims[0] * 8, dims[1] * 16),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )


@settings(max_examples=25, deadline=None)
@given(weight_matrices(), st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9, 1.0]))
def test_magnitude_mask_hits_exact_sparsity(w, sparsity):
    mask = magnitude_mask(w, sparsity)
    expected_pruned = round(sparsity * w.size)
    assert (~mask).sum() == expected_pruned


@settings(max_examples=25, deadline=None)
@given(weight_matrices(), st.sampled_from([(2, 4), (2, 8), (1, 16), (2, 16)]))
def test_nm_mask_always_structurally_valid(w, pattern):
    n, m = pattern
    mask = nm_mask(w, n, m)
    assert check_mask_nm(mask, n, m)
    assert mask_sparsity(mask) == 1 - n / m


@settings(max_examples=25, deadline=None)
@given(weight_matrices(), st.sampled_from([(4, 2, 8), (8, 2, 16), (8, 1, 8)]))
def test_vnm_mask_always_structurally_valid(w, config):
    v, n, m = config
    mask = vnm_mask(w, v=v, n=n, m=m)
    assert check_mask_vnm(mask, v=v, n=n, m=m)
    assert mask_sparsity(mask) == 1 - n / m


@settings(max_examples=25, deadline=None)
@given(weight_matrices())
def test_vnm_energy_never_exceeds_ideal(w):
    if np.abs(w).sum() == 0:
        return  # energy undefined for an all-zero matrix
    mask = vnm_mask(w, v=8, n=2, m=8)
    assert energy_metric(w, mask) <= ideal_energy(w, 0.75) + 1e-9


@settings(max_examples=25, deadline=None)
@given(weight_matrices())
def test_vector_wise_mask_keeps_whole_vectors(w):
    mask = vector_wise_mask(w, 0.5, l=8)
    vectors = mask.reshape(w.shape[0] // 8, 8, w.shape[1])
    all_or_nothing = vectors.all(axis=1) | (~vectors).all(axis=1)
    assert np.all(all_or_nothing)


@settings(max_examples=25, deadline=None)
@given(weight_matrices(), st.sampled_from([0.25, 0.5, 0.75]))
def test_magnitude_energy_monotone_in_sparsity(w, sparsity):
    if np.abs(w).sum() == 0:
        return
    assert ideal_energy(w, sparsity) >= ideal_energy(w, min(0.99, sparsity + 0.2)) - 1e-9
