"""Tests for mask utilities."""

import numpy as np
import pytest

from repro.pruning.masks import (
    PruningResult,
    apply_mask,
    check_mask_nm,
    check_mask_vnm,
    mask_density,
    mask_sparsity,
    validate_weight_matrix,
)


class TestValidation:
    def test_returns_float64(self):
        out = validate_weight_matrix(np.ones((2, 2), dtype=np.float32))
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_weight_matrix(np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_weight_matrix(np.ones((0, 2)))

    def test_rejects_complex(self):
        with pytest.raises(TypeError):
            validate_weight_matrix(np.ones((2, 2), dtype=complex))


class TestApplyMask:
    def test_zeroes_pruned_entries(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]])
        m = np.array([[True, False], [False, True]])
        out = apply_mask(w, m)
        assert np.array_equal(out, [[1.0, 0.0], [0.0, 4.0]])

    def test_does_not_mutate_input(self):
        w = np.ones((2, 2))
        apply_mask(w, np.zeros((2, 2), dtype=bool))
        assert np.all(w == 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_mask(np.ones((2, 2)), np.ones((2, 3), dtype=bool))

    def test_preserves_dtype(self):
        w = np.ones((2, 2), dtype=np.float32)
        assert apply_mask(w, np.ones((2, 2), dtype=bool)).dtype == np.float32


class TestSparsityMeasures:
    def test_mask_sparsity(self):
        m = np.array([[True, False], [False, False]])
        assert mask_sparsity(m) == pytest.approx(0.75)
        assert mask_density(m) == pytest.approx(0.25)

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            mask_sparsity(np.zeros((0,), dtype=bool))


class TestStructuralChecks:
    def test_check_mask_nm(self):
        good = np.array([[True, True, False, False]])
        bad = np.array([[True, True, True, False]])
        assert check_mask_nm(good, 2, 4)
        assert not check_mask_nm(bad, 2, 4)

    def test_check_mask_nm_shape_mismatch(self):
        assert not check_mask_nm(np.ones((1, 6), dtype=bool), 2, 4)

    def test_check_mask_vnm(self, rng):
        from repro.pruning.vnm import vnm_mask

        w = rng.normal(size=(16, 32))
        assert check_mask_vnm(vnm_mask(w, v=8, n=2, m=8), v=8, n=2, m=8)
        assert not check_mask_vnm(np.ones((16, 32), dtype=bool), v=8, n=2, m=8)


class TestPruningResult:
    def test_counts(self):
        mask = np.array([[True, False], [True, True]])
        res = PruningResult(mask=mask, pruned_weights=np.ones((2, 2)), target_sparsity=0.25)
        assert res.kept == 3
        assert res.pruned == 1
        assert res.sparsity == pytest.approx(0.25)
        assert res.density == pytest.approx(0.75)

    def test_energy_shortcut(self, rng):
        w = rng.normal(size=(4, 4))
        mask = np.abs(w) > np.median(np.abs(w))
        res = PruningResult(mask=mask, pruned_weights=apply_mask(w, mask))
        assert 0.0 < res.energy(w) <= 1.0
