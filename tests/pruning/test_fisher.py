"""Tests for the empirical Fisher estimation (second-order pruning)."""

import numpy as np
import pytest

from repro.pruning.second_order.fisher import (
    BlockFisher,
    diagonal_fisher,
    empirical_fisher_block,
    estimate_block_fisher,
    synthetic_gradients,
    woodbury_inverse,
)


@pytest.fixture
def grads(rng):
    return rng.normal(size=(32, 16))


class TestEmpiricalFisherBlock:
    def test_symmetric_positive_definite(self, grads):
        f = empirical_fisher_block(grads, damp=1e-3)
        assert np.allclose(f, f.T)
        eigvals = np.linalg.eigvalsh(f)
        assert np.all(eigvals > 0)

    def test_damping_on_diagonal(self, grads):
        f_small = empirical_fisher_block(grads, damp=1e-6)
        f_big = empirical_fisher_block(grads, damp=1.0)
        assert np.allclose(np.diag(f_big) - np.diag(f_small), 1.0 - 1e-6)

    def test_invalid_inputs(self, grads):
        with pytest.raises(ValueError):
            empirical_fisher_block(grads, damp=0.0)
        with pytest.raises(ValueError):
            empirical_fisher_block(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            empirical_fisher_block(np.zeros(4))


class TestWoodburyInverse:
    def test_matches_direct_inverse(self, grads):
        damp = 1e-2
        direct = np.linalg.inv(empirical_fisher_block(grads, damp=damp))
        woodbury = woodbury_inverse(grads, damp=damp)
        assert np.allclose(direct, woodbury, atol=1e-8)

    def test_result_symmetric(self, grads):
        inv = woodbury_inverse(grads, damp=1e-3)
        assert np.allclose(inv, inv.T, atol=1e-10)

    def test_invalid_damp(self, grads):
        with pytest.raises(ValueError):
            woodbury_inverse(grads, damp=-1.0)


class TestBlockFisher:
    def test_estimate_shapes(self, rng):
        shape = (4, 16)
        g = rng.normal(size=(8, 64))
        bf = estimate_block_fisher(g, shape, block_size=8)
        assert bf.num_blocks == 8
        assert bf.inverse_blocks.shape == (8, 8, 8)

    def test_block_of_weight(self, rng):
        bf = estimate_block_fisher(rng.normal(size=(4, 32)), (2, 16), block_size=8)
        assert bf.block_of_weight(0, 0) == 0
        assert bf.block_of_weight(0, 8) == 1
        assert bf.block_of_weight(1, 0) == 2
        with pytest.raises(IndexError):
            bf.block_of_weight(5, 0)

    def test_inverse_submatrix(self, rng):
        bf = estimate_block_fisher(rng.normal(size=(4, 32)), (2, 16), block_size=8)
        sub = bf.inverse_submatrix(0, np.array([0, 3, 5]))
        assert sub.shape == (3, 3)
        assert np.allclose(sub, bf.inverse_blocks[0][np.ix_([0, 3, 5], [0, 3, 5])])

    def test_diagonal_shape(self, rng):
        bf = estimate_block_fisher(rng.normal(size=(4, 32)), (2, 16), block_size=8)
        assert bf.diagonal().shape == (2, 16)

    def test_block_size_must_divide(self, rng):
        with pytest.raises(ValueError):
            estimate_block_fisher(rng.normal(size=(4, 32)), (2, 16), block_size=5)

    def test_gradient_shape_checked(self, rng):
        with pytest.raises(ValueError):
            estimate_block_fisher(rng.normal(size=(4, 30)), (2, 16), block_size=8)

    def test_constructor_validation(self, rng):
        with pytest.raises(ValueError):
            BlockFisher(shape=(2, 16), block_size=8, inverse_blocks=np.zeros((3, 8, 8)), damp=1e-4)


class TestDiagonalFisher:
    def test_positive(self, rng):
        w_shape = (4, 8)
        g = rng.normal(size=(16, 32))
        diag = diagonal_fisher(g, w_shape)
        assert diag.shape == w_shape
        assert np.all(diag > 0)


class TestSyntheticGradients:
    def test_shape_and_determinism(self, rng):
        w = rng.normal(size=(4, 8))
        g1 = synthetic_gradients(w, num_samples=8, seed=3)
        g2 = synthetic_gradients(w, num_samples=8, seed=3)
        assert g1.shape == (8, 32)
        assert np.array_equal(g1, g2)

    def test_gradient_scale_follows_weight_scale(self, rng):
        w = np.ones((2, 8)) * 0.001
        w[0, 0] = 10.0
        g = synthetic_gradients(w, num_samples=256, seed=0, correlation_decay=0.0)
        assert g[:, 0].std() > 10 * g[:, 5].std()

    def test_invalid_args(self, rng):
        w = rng.normal(size=(2, 4))
        with pytest.raises(ValueError):
            synthetic_gradients(w, num_samples=0)
        with pytest.raises(ValueError):
            synthetic_gradients(w, correlation_decay=1.0)
        with pytest.raises(ValueError):
            synthetic_gradients(np.zeros(4))
