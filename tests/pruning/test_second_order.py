"""Tests for the second-order V:N:M pruner, scheduler and proxy task."""

import numpy as np
import pytest

from repro.pruning.masks import check_mask_nm, check_mask_vnm
from repro.pruning.nm import nm_mask
from repro.pruning.masks import apply_mask
from repro.pruning.second_order.fisher import estimate_block_fisher, synthetic_gradients
from repro.pruning.second_order.obs_vnm import (
    SecondOrderConfig,
    second_order_nm_prune,
    second_order_vnm_prune,
)
from repro.pruning.second_order.proxy import DENSE_F1, FLOOR_F1, QuadraticTask, synthesize_trained_layer
from repro.pruning.second_order.scheduler import (
    gradual_vnm_prune,
    one_shot_vnm_prune,
    structure_decay_schedule,
)


@pytest.fixture(scope="module")
def layer():
    return synthesize_trained_layer(rows=16, cols=64, seed=1)


@pytest.fixture(scope="module")
def layer_grads(layer):
    return synthetic_gradients(layer, num_samples=24, seed=2)


class TestSecondOrderNM:
    def test_mask_obeys_pattern(self, layer, layer_grads):
        res = second_order_nm_prune(layer, n=2, m=8, grads=layer_grads)
        assert check_mask_nm(res.mask, 2, 8)
        assert res.sparsity == pytest.approx(0.75)

    def test_weight_update_zeroes_pruned(self, layer, layer_grads):
        res = second_order_nm_prune(layer, n=2, m=8, grads=layer_grads)
        assert np.all(res.pruned_weights[~res.mask] == 0.0)

    def test_no_update_keeps_survivors_unchanged(self, layer, layer_grads):
        cfg = SecondOrderConfig(apply_update=False)
        res = second_order_nm_prune(layer, n=2, m=8, config=cfg, grads=layer_grads)
        assert np.allclose(res.pruned_weights[res.mask], np.asarray(layer, dtype=np.float64)[res.mask])

    def test_better_than_magnitude_under_quadratic_loss(self):
        """The OBS selection+update must not lose to plain magnitude N:M."""
        task = QuadraticTask.create(rows=16, cols=64, num_grad_samples=32, seed=5)
        res = second_order_nm_prune(task.weights, n=2, m=8, grads=task.grads)
        magnitude = apply_mask(task.weights, nm_mask(task.weights, 2, 8))
        assert task.loss_increase(res.pruned_weights) <= task.loss_increase(magnitude) * 1.05

    def test_invalid_pattern(self, layer, layer_grads):
        with pytest.raises(ValueError):
            second_order_nm_prune(layer, n=9, m=8, grads=layer_grads)

    def test_fisher_block_must_align(self, layer, layer_grads):
        cfg = SecondOrderConfig(fisher_block_size=6)
        with pytest.raises(ValueError):
            second_order_nm_prune(layer, n=2, m=8, config=cfg, grads=layer_grads)


class TestSecondOrderVNM:
    def test_mask_obeys_vnm_pattern(self, layer, layer_grads):
        res = second_order_vnm_prune(layer, v=8, n=2, m=8, grads=layer_grads)
        assert check_mask_vnm(res.mask, v=8, n=2, m=8)
        assert res.sparsity == pytest.approx(0.75)

    def test_v1_falls_back_to_nm(self, layer, layer_grads):
        a = second_order_vnm_prune(layer, v=1, n=2, m=8, grads=layer_grads)
        b = second_order_nm_prune(layer, n=2, m=8, grads=layer_grads)
        assert np.array_equal(a.mask, b.mask)

    def test_larger_v_is_more_constrained(self):
        task = QuadraticTask.create(rows=32, cols=64, num_grad_samples=32, seed=7)
        small_v = second_order_vnm_prune(task.weights, v=8, n=2, m=16, grads=task.grads)
        large_v = second_order_vnm_prune(task.weights, v=32, n=2, m=16, grads=task.grads)
        assert task.loss_increase(small_v.pruned_weights) <= task.loss_increase(large_v.pruned_weights) + 1e-9

    def test_reuses_precomputed_fisher(self, layer, layer_grads):
        fisher = estimate_block_fisher(layer_grads, layer.shape, block_size=8)
        res = second_order_vnm_prune(layer, v=8, n=2, m=8, fisher=fisher)
        assert check_mask_vnm(res.mask, v=8, n=2, m=8)


class TestStructureDecayScheduler:
    def test_schedule_ends_at_target(self):
        sched = structure_decay_schedule(n_target=2, m=16, steps=4)
        assert sched[-1] == 2
        assert all(b <= a for a, b in zip(sched, sched[1:]))

    def test_single_step(self):
        assert structure_decay_schedule(2, 16, 1) == [2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            structure_decay_schedule(0, 16, 4)
        with pytest.raises(ValueError):
            structure_decay_schedule(2, 16, 0)
        with pytest.raises(ValueError):
            structure_decay_schedule(10, 16, 4, n_start=4)

    def test_gradual_run_reaches_target_sparsity(self, layer, layer_grads):
        run = gradual_vnm_prune(layer, v=8, n_target=2, m=8, steps=3, grads=layer_grads)
        assert run.final.sparsity == pytest.approx(0.75)
        assert check_mask_vnm(run.final.mask, v=8, n=2, m=8)
        assert len(run.results) == len(run.schedule)

    def test_gradual_beats_or_matches_one_shot(self):
        task = QuadraticTask.create(rows=16, cols=64, num_grad_samples=32, seed=11)
        gradual = gradual_vnm_prune(
            task.weights, v=8, n_target=1, m=8, steps=3, grads=task.grads,
            recovery_fn=lambda w, step: task.recovery_step(w),
        )
        one_shot = one_shot_vnm_prune(task.weights, v=8, n_target=1, m=8, grads=task.grads)
        assert task.f1_of_result(gradual.final) >= task.f1_of_result(one_shot) - 0.5

    def test_empty_run_raises(self):
        from repro.pruning.second_order.scheduler import GradualPruningRun

        with pytest.raises(ValueError):
            GradualPruningRun().final


class TestQuadraticTask:
    def test_dense_scores_reference_f1(self):
        task = QuadraticTask.create(rows=8, cols=32, seed=0)
        assert task.f1_score(task.weights) >= DENSE_F1 - 0.01

    def test_f1_decreases_with_damage(self):
        task = QuadraticTask.create(rows=8, cols=32, seed=0)
        half = task.weights * np.where(np.arange(task.weights.size).reshape(task.weights.shape) % 2, 1.0, 0.0)
        zero = np.zeros_like(task.weights)
        assert task.f1_score(task.weights) >= task.f1_score(half) >= task.f1_score(zero)
        assert task.f1_score(zero) <= FLOOR_F1 + 15.0

    def test_loss_increase_zero_at_optimum(self):
        task = QuadraticTask.create(rows=8, cols=32, seed=0)
        assert task.loss_increase(task.weights) == pytest.approx(0.0)

    def test_recovery_moves_toward_optimum(self):
        task = QuadraticTask.create(rows=8, cols=32, seed=0)
        damaged = task.weights * 0.5
        recovered = task.recovery_step(damaged, lr=0.5)
        assert task.loss_increase(recovered) < task.loss_increase(damaged)

    def test_shape_checks(self):
        task = QuadraticTask.create(rows=8, cols=32, seed=0)
        with pytest.raises(ValueError):
            task.loss_increase(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            task.recovery_step(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            task.recovery_step(task.weights, lr=0.0)

    def test_synthesize_layer_outliers(self):
        layer = synthesize_trained_layer(rows=32, cols=128, seed=3, outlier_fraction=0.05, outlier_scale=8.0)
        col_norms = np.abs(layer).sum(axis=0)
        assert col_norms.max() > 4 * np.median(col_norms)
        with pytest.raises(ValueError):
            synthesize_trained_layer(rows=0, cols=8)
