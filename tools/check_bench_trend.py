#!/usr/bin/env python
"""Gate a bench record against absolute floors and a prior baseline.

Two checks, both over the ``benchmarks`` entry list a
``benchmarks/run_bench.py`` run writes:

1. **Serving floor** — every ``serving.*`` entry must hold a speedup of at
   least ``--min-serving-speedup`` (default 1.0): the serving stack exists
   to beat its own reference policies, so a sub-1.0 entry is a wall-clock
   regression by definition (this is exactly the regression class the
   continuous-batching rework fixed; the gate keeps it fixed).  The one
   exception is ``serving.encoder_faulted``: that entry compares fault-free
   serving against the *same* schedule under seeded fault injection, so its
   ratio is below 1.0 by construction (failovers re-execute work); its gate
   is availability, not speedup, and the floor exempts it.  The trend check
   below still covers it.
2. **Trend** — when a baseline record is given, any entry present in both
   (matched by ``(op, shape)``) must not regress by more than
   ``--regression-tolerance`` (default 10%) relative to the baseline's
   recorded speedup.  Entries only one side has are ignored (no fabricated
   comparisons when shapes differ between records).

The serving floor is calibrated for *full-mode* records: ``--quick``
records run the serving benches at smoke-test shapes where per-step
scheduling overhead dominates the near-zero compute, so gating them at
1.0x would fail by construction.  CI therefore runs this tool only in the
perf job, against a full ``benchmarks/run_bench.py`` run.

CI's advisory perf job runs this against the committed record::

    PYTHONPATH=src python benchmarks/run_bench.py --output BENCH_current.json
    python tools/check_bench_trend.py BENCH_current.json --baseline BENCH_engine.json

Exits non-zero listing every violated gate; prints a one-line OK otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

# serving.* entries whose speedup is sub-1.0 by construction: the faulted
# entry's "vectorized" side serves the identical schedule with seeded faults
# injected, so failover retries make it strictly slower than the fault-free
# reference.  Its guarantee is availability under faults (tested in
# tests/serving/), not wall-clock speedup — the floor must not flag it.
# The baseline trend comparison still applies to exempted entries.
SERVING_FLOOR_EXEMPT = ("serving.encoder_faulted",)


def _entries(record) -> List[dict]:
    """The benchmark entry list of a parsed record (or a bare entry list)."""
    if isinstance(record, list):
        return record
    if isinstance(record, dict) and isinstance(record.get("benchmarks"), list):
        return record["benchmarks"]
    raise ValueError(
        "bench record must be a list of entries or a dict with a 'benchmarks' list"
    )


def _is_nan(value) -> bool:
    """True when ``value`` is a float NaN (the 'no data' sentinel)."""
    return isinstance(value, float) and math.isnan(value)


def check_trend(
    current,
    baseline=None,
    min_serving_speedup: float = 1.0,
    regression_tolerance: float = 0.10,
    warnings: Optional[List[str]] = None,
) -> List[str]:
    """All gate violations of ``current`` (empty list == all gates hold).

    A NaN speedup means "no data" (e.g. a percentile over zero completed
    requests): such entries must not *pass* a floor by accident — every
    float comparison against NaN is False, so ``nan < floor`` would wave
    the entry through silently.  NaN entries are instead skipped outright,
    with a note appended to ``warnings`` when a list is supplied.  The
    same applies to a NaN baseline speedup: no trend comparison is
    fabricated against missing data.
    """
    if not 0.0 <= regression_tolerance < 1.0:
        raise ValueError(
            f"regression_tolerance must be in [0, 1), got {regression_tolerance}"
        )
    failures: List[str] = []
    current_entries = _entries(current)
    nan_keys = set()
    for entry in current_entries:
        op, shape = entry.get("op", "?"), entry.get("shape", "?")
        speedup = entry.get("speedup")
        if speedup is None:
            failures.append(f"{op} [{shape}]: entry has no speedup field")
            continue
        if _is_nan(speedup):
            nan_keys.add((op, shape))
            if warnings is not None:
                warnings.append(
                    f"{op} [{shape}]: speedup is NaN (no data) — floor and "
                    "trend checks skipped"
                )
            continue
        if (
            op.startswith("serving.")
            and op not in SERVING_FLOOR_EXEMPT
            and speedup < min_serving_speedup
        ):
            failures.append(
                f"{op} [{shape}]: serving speedup {speedup:.2f}x is below the "
                f"{min_serving_speedup:.2f}x floor"
            )
    if baseline is not None:
        by_key: Dict[Tuple[str, str], dict] = {
            (e.get("op", "?"), e.get("shape", "?")): e for e in _entries(baseline)
        }
        for entry in current_entries:
            key = (entry.get("op", "?"), entry.get("shape", "?"))
            prior = by_key.get(key)
            if prior is None or entry.get("speedup") is None or key in nan_keys:
                continue
            prior_speedup = prior.get("speedup")
            if _is_nan(prior_speedup):
                if warnings is not None:
                    warnings.append(
                        f"{key[0]} [{key[1]}]: baseline speedup is NaN (no "
                        "data) — trend check skipped"
                    )
                continue
            if not prior_speedup or prior_speedup <= 0:
                continue
            floor = prior_speedup * (1.0 - regression_tolerance)
            if entry["speedup"] < floor:
                failures.append(
                    f"{key[0]} [{key[1]}]: speedup {entry['speedup']:.2f}x regressed "
                    f">{regression_tolerance:.0%} from the baseline's "
                    f"{prior_speedup:.2f}x (floor {floor:.2f}x)"
                )
    return failures


def _load(path: Optional[str]):
    if path is None:
        return None
    return json.loads(Path(path).read_text())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench record JSON to gate")
    parser.add_argument(
        "--baseline", default=None, help="prior bench record JSON to compare against"
    )
    parser.add_argument("--min-serving-speedup", type=float, default=1.0)
    parser.add_argument("--regression-tolerance", type=float, default=0.10)
    args = parser.parse_args(argv)
    warnings: List[str] = []
    failures = check_trend(
        _load(args.current),
        baseline=_load(args.baseline),
        min_serving_speedup=args.min_serving_speedup,
        regression_tolerance=args.regression_tolerance,
        warnings=warnings,
    )
    for warning in warnings:
        print(f"  WARN {warning}")
    if failures:
        print(f"bench trend gate: {len(failures)} violation(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    n = len(_entries(_load(args.current)))
    print(
        f"bench trend gate: OK — {n} entries hold the "
        f"{args.min_serving_speedup:.2f}x serving floor"
        + ("" if args.baseline is None else " and the baseline trend")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
