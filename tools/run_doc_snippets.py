#!/usr/bin/env python
"""Execute the ``python`` code fences of the repo's markdown docs.

The docs-cannot-rot gate: every ```` ```python ```` fence in the given
markdown files is extracted and executed, top to bottom, in one shared
namespace per file (so a tutorial's later snippets may build on earlier
ones).  Non-``python`` fences (shell commands, output transcripts) are
ignored.  A file with zero runnable snippets fails — if a quickstart is
rewritten into prose, the gate should notice, not silently pass::

    PYTHONPATH=src python tools/run_doc_snippets.py README.md docs/serving.md

Exits non-zero on the first failing snippet, printing the file and snippet
index so the offending fence is easy to find.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def run_file(path: Path) -> int:
    """Execute every python fence of ``path``; returns the snippet count."""
    snippets = FENCE.findall(path.read_text())
    if not snippets:
        raise SystemExit(f"{path}: no ```python fences found — nothing to verify")
    namespace: dict = {"__name__": f"__doc_snippet__{path.stem}"}
    for index, code in enumerate(snippets, 1):
        try:
            exec(compile(code, f"{path}[snippet {index}]", "exec"), namespace)
        except Exception:
            print(f"FAILED: {path} snippet {index}:\n{code}", file=sys.stderr)
            raise
    return len(snippets)


def main(argv: list[str]) -> None:
    if not argv:
        raise SystemExit("usage: run_doc_snippets.py FILE.md [FILE.md ...]")
    for name in argv:
        count = run_file(Path(name))
        print(f"{name}: {count} snippet(s) executed ok")


if __name__ == "__main__":
    main(sys.argv[1:])
